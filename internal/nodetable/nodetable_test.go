package nodetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/timing"
)

func TestOwnedRangesTile(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, n := range []int{1, 2, p, p + 1, 3*p - 1, 100} {
			w := comm.NewWorld(p, timing.T3D())
			los := make([]int, p)
			his := make([]int, p)
			w.Run(func(c *comm.Comm) {
				nt := New(c, n)
				los[c.Rank()], his[c.Rank()] = nt.OwnedRange()
				nt.Free()
			})
			pos := 0
			for r := 0; r < p; r++ {
				if los[r] != pos && his[r] != los[r] {
					t.Fatalf("p=%d n=%d rank %d: range [%d,%d) does not continue at %d", p, n, r, los[r], his[r], pos)
				}
				if his[r] > los[r] {
					pos = his[r]
				}
			}
			if pos != n {
				t.Fatalf("p=%d n=%d: ranges cover [0,%d), want [0,%d)", p, n, pos, n)
			}
		}
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	w := comm.NewWorld(1, timing.T3D())
	w.Run(func(c *comm.Comm) {
		defer func() {
			if recover() == nil {
				panic("New(0) did not panic")
			}
		}()
		New(c, 0)
	})
}

// roundTrip updates the table from distributed assignments and reads every
// record back from a different distribution of enquiries.
func roundTrip(t *testing.T, p, n int, childOf []uint8) {
	t.Helper()
	w := comm.NewWorld(p, timing.T3D())
	results := make([][]uint8, p)
	queries := make([][]int32, p)
	w.Run(func(c *comm.Comm) {
		nt := New(c, n)
		defer nt.Free()
		// Each rank updates the rids congruent to its rank mod p
		// (deliberately different from the table's block ownership).
		var as []Assignment
		for rid := c.Rank(); rid < n; rid += p {
			as = append(as, Assignment{Rid: int32(rid), Child: childOf[rid]})
		}
		nt.Update(as)
		// Each rank then asks for a strided, shuffled set of rids.
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		var q []int32
		for rid := 0; rid < n; rid++ {
			if rng.Intn(2) == 0 {
				q = append(q, int32(rid))
			}
		}
		rng.Shuffle(len(q), func(i, j int) { q[i], q[j] = q[j], q[i] })
		queries[c.Rank()] = q
		results[c.Rank()] = nt.Lookup(q)
	})
	for r := 0; r < p; r++ {
		for i, rid := range queries[r] {
			if results[r][i] != childOf[rid] {
				t.Fatalf("p=%d n=%d rank %d: rid %d -> %d, want %d", p, n, r, rid, results[r][i], childOf[rid])
			}
		}
	}
}

func TestUpdateLookupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, p := range []int{1, 2, 3, 4, 7} {
		for _, n := range []int{1, p, 17, 100} {
			childOf := make([]uint8, n)
			for i := range childOf {
				childOf[i] = uint8(rng.Intn(5))
			}
			roundTrip(t, p, n, childOf)
		}
	}
}

func TestUpdateOverwrites(t *testing.T) {
	// A second level's updates must replace the first's.
	p, n := 3, 30
	w := comm.NewWorld(p, timing.T3D())
	ok := make([]bool, p)
	w.Run(func(c *comm.Comm) {
		nt := New(c, n)
		defer nt.Free()
		var first, second []Assignment
		for rid := c.Rank(); rid < n; rid += p {
			first = append(first, Assignment{Rid: int32(rid), Child: 1})
			second = append(second, Assignment{Rid: int32(rid), Child: 2})
		}
		nt.Update(first)
		nt.Update(second)
		var all []int32
		for rid := 0; rid < n; rid++ {
			all = append(all, int32(rid))
		}
		got := nt.Lookup(all)
		for _, g := range got {
			if g != 2 {
				return
			}
		}
		ok[c.Rank()] = true
	})
	for r, o := range ok {
		if !o {
			t.Fatalf("rank %d saw stale values", r)
		}
	}
}

func TestSkewedUpdatesAllFromOneRank(t *testing.T) {
	// The pathological case of section 3.3.2: one processor sources every
	// update (far more than N/p). Blocked rounds must deliver all of them.
	p, n := 4, 200
	childOf := make([]uint8, n)
	for i := range childOf {
		childOf[i] = uint8(i % 3)
	}
	w := comm.NewWorld(p, timing.T3D())
	results := make([][]uint8, p)
	w.Run(func(c *comm.Comm) {
		nt := New(c, n)
		defer nt.Free()
		var as []Assignment
		if c.Rank() == 0 {
			for rid := 0; rid < n; rid++ {
				as = append(as, Assignment{Rid: int32(rid), Child: childOf[rid]})
			}
		}
		nt.Update(as)
		var all []int32
		for rid := 0; rid < n; rid++ {
			all = append(all, int32(rid))
		}
		results[c.Rank()] = nt.Lookup(all)
	})
	for r := 0; r < p; r++ {
		for rid := 0; rid < n; rid++ {
			if results[r][rid] != childOf[rid] {
				t.Fatalf("rank %d: rid %d -> %d want %d", r, rid, results[r][rid], childOf[rid])
			}
		}
	}
}

func TestSkewedUpdateUsesMultipleRounds(t *testing.T) {
	// With n=200, p=4, chunk=50, rank 0 sending 200 updates needs 4
	// send rounds; each round is one AllToAll plus one AllReduce.
	p, n := 4, 200
	w := comm.NewWorld(p, timing.T3D())
	w.Run(func(c *comm.Comm) {
		nt := New(c, n)
		defer nt.Free()
		var as []Assignment
		if c.Rank() == 0 {
			for rid := 0; rid < n; rid++ {
				as = append(as, Assignment{Rid: int32(rid), Child: 1})
			}
		}
		nt.Update(as)
	})
	st := w.Stats()
	if st[0].AllToAlls < 4 {
		t.Fatalf("skewed update used %d all-to-alls, want >= 4 blocked rounds", st[0].AllToAlls)
	}
	// No receiver can get more than its slab per level regardless of skew.
	for r := 1; r < p; r++ {
		if st[r].BytesRecv > int64(n/p)*wireUpdateSize+64 {
			t.Fatalf("rank %d received %d bytes, exceeding the O(N/p) bound", r, st[r].BytesRecv)
		}
	}
}

func TestLookupEmptyOnSomeRanks(t *testing.T) {
	p, n := 3, 12
	w := comm.NewWorld(p, timing.T3D())
	w.Run(func(c *comm.Comm) {
		nt := New(c, n)
		defer nt.Free()
		var as []Assignment
		if c.Rank() == 1 {
			for rid := 0; rid < n; rid++ {
				as = append(as, Assignment{Rid: int32(rid), Child: 9})
			}
		}
		nt.Update(as)
		var q []int32
		if c.Rank() == 2 {
			q = []int32{0, 11, 5}
		}
		got := nt.Lookup(q)
		if c.Rank() == 2 {
			for i, g := range got {
				if g != 9 {
					panic(i)
				}
			}
		} else if len(got) != 0 {
			panic("non-querying rank got results")
		}
	})
}

func TestLookupDuplicateRids(t *testing.T) {
	p, n := 2, 10
	w := comm.NewWorld(p, timing.T3D())
	w.Run(func(c *comm.Comm) {
		nt := New(c, n)
		defer nt.Free()
		var as []Assignment
		if c.Rank() == 0 {
			for rid := 0; rid < n; rid++ {
				as = append(as, Assignment{Rid: int32(rid), Child: uint8(rid)})
			}
		}
		nt.Update(as)
		got := nt.Lookup([]int32{3, 3, 7, 3})
		want := []uint8{3, 3, 7, 3}
		for i := range want {
			if got[i] != want[i] {
				panic("duplicate rid lookup wrong")
			}
		}
	})
}

func TestMemoryScalesWithSlab(t *testing.T) {
	// Peak tracked memory per rank must be close to the slab size plus
	// transient buffers — never O(N) for p > 1.
	n := 1000
	for _, p := range []int{2, 4, 8} {
		w := comm.NewWorld(p, timing.T3D())
		w.Run(func(c *comm.Comm) {
			nt := New(c, n)
			defer nt.Free()
			var as []Assignment
			lo, hi := c.Rank()*n/p, (c.Rank()+1)*n/p
			for rid := lo; rid < hi; rid++ {
				as = append(as, Assignment{Rid: int32(rid), Child: 1})
			}
			nt.Update(as)
		})
		chunk := (n + p - 1) / p
		for r, peak := range w.PeakMemory() {
			// slab + in-flight send and receive buffers, all O(N/p)
			bound := int64(chunk) * (1 + 2*wireUpdateSize)
			if peak > bound+64 {
				t.Fatalf("p=%d rank %d: peak %d exceeds O(N/p) bound %d", p, r, peak, bound)
			}
		}
	}
}

func TestBlockingBoundsSkewedSenderMemory(t *testing.T) {
	// Ablation for section 3.3.2: with one rank sourcing all N updates,
	// blocked rounds keep its in-flight buffers at O(N/p); disabling
	// blocking makes them O(N).
	p, n := 4, 400
	peak := func(block int) int64 {
		w := comm.NewWorld(p, timing.T3D())
		w.Run(func(c *comm.Comm) {
			nt := NewWithBlock(c, n, block)
			defer nt.Free()
			var as []Assignment
			if c.Rank() == 0 {
				for rid := 0; rid < n; rid++ {
					as = append(as, Assignment{Rid: int32(rid), Child: 1})
				}
			}
			nt.Update(as)
		})
		return w.PeakMemory()[0]
	}
	blocked := peak(n / p)
	unblocked := peak(0)
	if blocked >= unblocked {
		t.Fatalf("blocking should reduce peak sender memory: blocked %d, unblocked %d", blocked, unblocked)
	}
	// The send buffer shrinks p-fold; slab and receive buffer are fixed,
	// so the overall peak improves by a smaller (but still large) factor.
	if float64(unblocked) < 2*float64(blocked) {
		t.Fatalf("expected a large reduction: blocked %d, unblocked %d", blocked, unblocked)
	}
}

func TestUnblockedSingleRound(t *testing.T) {
	p, n := 4, 100
	w := comm.NewWorld(p, timing.T3D())
	w.Run(func(c *comm.Comm) {
		nt := NewWithBlock(c, n, 0)
		defer nt.Free()
		var as []Assignment
		if c.Rank() == 0 {
			for rid := 0; rid < n; rid++ {
				as = append(as, Assignment{Rid: int32(rid), Child: 3})
			}
		}
		nt.Update(as)
		got := nt.Lookup([]int32{0, int32(n - 1)})
		if got[0] != 3 || got[1] != 3 {
			panic("unblocked update lost data")
		}
	})
	if a := w.Stats()[0].AllToAlls; a != 3 { // 1 update round + 2 lookup steps
		t.Fatalf("unblocked update should use one round; saw %d all-to-alls total", a)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(6)
		n := 1 + rng.Intn(80)
		childOf := make([]uint8, n)
		for i := range childOf {
			childOf[i] = uint8(rng.Intn(7))
		}
		w := comm.NewWorld(p, timing.T3D())
		ok := true
		w.Run(func(c *comm.Comm) {
			nt := New(c, n)
			defer nt.Free()
			var as []Assignment
			for rid := 0; rid < n; rid++ {
				if rid%p == c.Rank() {
					as = append(as, Assignment{Rid: int32(rid), Child: childOf[rid]})
				}
			}
			nt.Update(as)
			var q []int32
			for rid := n - 1; rid >= 0; rid-- {
				q = append(q, int32(rid))
			}
			got := nt.Lookup(q)
			for i, rid := range q {
				if got[i] != childOf[rid] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// mustProtocolError runs f on a 1-rank world and asserts it panics with a
// typed *comm.ProtocolError whose Op matches. A single rank keeps the
// corrupt-index panic from stranding peers mid-collective.
func mustProtocolError(t *testing.T, wantOp string, f func(nt *Table)) {
	t.Helper()
	w := comm.NewWorld(1, timing.T3D())
	w.Run(func(c *comm.Comm) {
		nt := New(c, 5)
		defer func() {
			pe, ok := recover().(*comm.ProtocolError)
			if !ok {
				t.Errorf("%s: want *comm.ProtocolError panic, got %v", wantOp, pe)
				return
			}
			if pe.Op != wantOp {
				t.Errorf("Op = %q, want %q", pe.Op, wantOp)
			}
		}()
		f(nt)
	})
}

// A corrupted record id that still hashes to a valid owner but names a slot
// outside the slab must surface as a typed data fault, not a slice panic.
func TestUpdateCorruptIndexIsProtocolError(t *testing.T) {
	mustProtocolError(t, "NodeTable.Update", func(nt *Table) {
		nt.Update([]Assignment{{Rid: -1, Child: 1}})
	})
}

func TestLookupCorruptIndexIsProtocolError(t *testing.T) {
	mustProtocolError(t, "NodeTable.Lookup", func(nt *Table) {
		nt.Lookup([]int32{-1})
	})
}
