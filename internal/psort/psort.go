// Package psort implements the Presort phase: a scalable parallel sample
// sort of distributed continuous attribute lists, followed by the parallel
// shift that rebalances the sorted list so every processor again owns an
// equal contiguous block (the load-balanced initial distribution the rest
// of the induction relies on).
//
// The total order is (value, record id): ties broken by record id make the
// global order — and therefore every downstream split decision — fully
// deterministic and independent of the processor count.
package psort

import (
	"slices"
	"sort"

	"repro/internal/comm"
	"repro/internal/dataset"
)

// less is the total order on entries (dataset.CompareContEntries).
func less(a, b dataset.ContEntry) bool {
	return dataset.CompareContEntries(a, b) < 0
}

// Sort globally sorts the distributed list and rebalances it: afterwards
// rank r holds exactly positions BlockRange(N, p, r) of the sorted order.
// Every rank must call it (it communicates). The local input is consumed.
func Sort(c *comm.Comm, local []dataset.ContEntry) []dataset.ContEntry {
	p := c.Size()
	model := c.Model()

	// Step 1: local sort.
	c.Compute(model.SortTime(len(local)))
	slices.SortFunc(local, dataset.CompareContEntries)

	if p == 1 {
		return local
	}

	// Step 2: regular sampling — p-1 local samples at even intervals
	// (fewer only when the fragment itself is smaller). Full coverage of
	// every local quantile is essential: sampling fewer positions
	// concentrates the pool near each fragment's interior quantiles and
	// collapses the splitters onto the global median.
	s := p - 1
	if len(local) < s {
		s = len(local)
	}
	samples := make([]dataset.ContEntry, 0, s)
	for i := 1; i <= s; i++ {
		idx := i * len(local) / (s + 1)
		if idx < len(local) {
			samples = append(samples, local[idx])
		}
	}

	// Step 3: gather all samples everywhere and derive p-1 splitters.
	// The sample pool is O(p²) entries per rank — one of the structures
	// whose growth with p bends the memory and runtime curves at large p.
	// Each rank's contribution arrives sorted, so ordering the pool is a
	// p-way merge (n·log2 p comparisons), not a full sort.
	pool := comm.AllgatherFlat(c, samples)
	c.Mem().Alloc(int64(len(pool)) * dataset.ContEntrySize)
	c.Compute(float64(len(pool)) * logish(p) / model.SortRate)
	slices.SortFunc(pool, dataset.CompareContEntries)
	splitters := make([]dataset.ContEntry, 0, p-1)
	for i := 1; i < p; i++ {
		idx := i * len(pool) / p
		if idx >= len(pool) {
			idx = len(pool) - 1
		}
		if len(pool) > 0 {
			splitters = append(splitters, pool[idx])
		}
	}
	c.Mem().Free(int64(len(pool)) * dataset.ContEntrySize)

	// Step 4: partition the sorted local list by the splitters and
	// exchange: destination d receives entries in (splitter[d-1],
	// splitter[d]].
	send := make([][]dataset.ContEntry, p)
	start := 0
	for d := 0; d < p; d++ {
		end := len(local)
		if d < len(splitters) {
			s := splitters[d]
			end = sort.Search(len(local), func(i int) bool { return less(s, local[i]) })
		}
		if end < start {
			end = start
		}
		send[d] = local[start:end]
		start = end
	}
	recv := comm.AllToAll(c, send)

	// Step 5: merge the p sorted runs. The runs arrive in rank order and
	// each is sorted, so a final sort acts as the multiway merge; charge
	// merge cost (n·log2 p comparisons).
	total := 0
	for _, r := range recv {
		total += len(r)
	}
	merged := make([]dataset.ContEntry, 0, total)
	for _, r := range recv {
		merged = append(merged, r...)
	}
	c.Mem().Alloc(int64(total) * dataset.ContEntrySize)
	c.Compute(float64(total) * logish(p) / model.SortRate) // n·log2(p) merge comparisons
	slices.SortFunc(merged, dataset.CompareContEntries)
	out := Rebalance(c, merged)
	c.Mem().Free(int64(total) * dataset.ContEntrySize)
	return out
}

// logish returns ceil(log2(n)) for n >= 1 (1 for n <= 2).
func logish(n int) float64 {
	l := 1
	for v := 2; v < n; v *= 2 {
		l++
	}
	return float64(l)
}

// Rebalance is the parallel shift: given a globally ordered distributed
// list with arbitrary per-rank counts, it redistributes entries so rank r
// holds exactly the positions BlockRange(N, p, r) of the global order,
// preserving order. Every rank must call it.
func Rebalance(c *comm.Comm, local []dataset.ContEntry) []dataset.ContEntry {
	p := c.Size()
	if p == 1 {
		return local
	}
	counts := comm.AllgatherFlat(c, []int64{int64(len(local))})
	var myStart, n int64
	for r, cnt := range counts {
		if r < c.Rank() {
			myStart += cnt
		}
		n += cnt
	}
	if n == 0 {
		return local[:0]
	}

	send := make([][]dataset.ContEntry, p)
	i := 0
	for i < len(local) {
		pos := int(myStart) + i
		owner := dataset.BlockOwner(int(n), p, pos)
		_, hi := dataset.BlockRange(int(n), p, owner)
		end := i + (hi - pos)
		if end > len(local) {
			end = len(local)
		}
		send[owner] = local[i:end]
		i = end
	}
	recv := comm.AllToAll(c, send)
	total := 0
	for _, r := range recv {
		total += len(r)
	}
	out := make([]dataset.ContEntry, 0, total)
	for _, r := range recv { // rank order preserves the global order
		out = append(out, r...)
	}
	c.Compute(c.Model().SplitTime(total))
	return out
}
