package psort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/dataset"
	"repro/internal/timing"
)

// runSort distributes entries in blocks, sorts in parallel, and returns the
// per-rank results plus the world for stats inspection.
func runSort(p int, entries []dataset.ContEntry) ([][]dataset.ContEntry, *comm.World) {
	w := comm.NewWorld(p, timing.T3D())
	out := make([][]dataset.ContEntry, p)
	w.Run(func(c *comm.Comm) {
		lo, hi := dataset.BlockRange(len(entries), p, c.Rank())
		local := make([]dataset.ContEntry, hi-lo)
		copy(local, entries[lo:hi])
		out[c.Rank()] = Sort(c, local)
	})
	return out, w
}

func checkGloballySorted(t *testing.T, parts [][]dataset.ContEntry, want []dataset.ContEntry) {
	t.Helper()
	var flat []dataset.ContEntry
	for _, p := range parts {
		flat = append(flat, p...)
	}
	if len(flat) != len(want) {
		t.Fatalf("sorted output has %d entries, want %d", len(flat), len(want))
	}
	ref := make([]dataset.ContEntry, len(want))
	copy(ref, want)
	sort.Slice(ref, func(i, j int) bool { return less(ref[i], ref[j]) })
	for i := range flat {
		if flat[i] != ref[i] {
			t.Fatalf("position %d: got %+v want %+v", i, flat[i], ref[i])
		}
	}
}

func checkBalanced(t *testing.T, parts [][]dataset.ContEntry, n, p int) {
	t.Helper()
	for r, part := range parts {
		lo, hi := dataset.BlockRange(n, p, r)
		if len(part) != hi-lo {
			t.Fatalf("rank %d holds %d entries, want %d", r, len(part), hi-lo)
		}
	}
}

func randomEntries(rng *rand.Rand, n, distinct int) []dataset.ContEntry {
	out := make([]dataset.ContEntry, n)
	for i := range out {
		out[i] = dataset.ContEntry{
			Val: float64(rng.Intn(distinct)),
			Rid: int32(i),
			Cid: uint8(rng.Intn(2)),
		}
	}
	return out
}

func TestSortVariousSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for _, n := range []int{0, 1, 5, p, p * p, 100, 257} {
			entries := randomEntries(rng, n, 50)
			parts, _ := runSort(p, entries)
			checkGloballySorted(t, parts, entries)
			checkBalanced(t, parts, n, p)
		}
	}
}

func TestSortAllDuplicates(t *testing.T) {
	// Every value identical: ordering falls back to rid; the result must
	// be the identity permutation by rid.
	n, p := 100, 4
	entries := make([]dataset.ContEntry, n)
	for i := range entries {
		entries[i] = dataset.ContEntry{Val: 7, Rid: int32(i)}
	}
	parts, _ := runSort(p, entries)
	pos := 0
	for _, part := range parts {
		for _, e := range part {
			if e.Rid != int32(pos) {
				t.Fatalf("position %d has rid %d", pos, e.Rid)
			}
			pos++
		}
	}
	checkBalanced(t, parts, n, p)
}

func TestSortAlreadySortedAndReversed(t *testing.T) {
	n, p := 64, 8
	asc := make([]dataset.ContEntry, n)
	desc := make([]dataset.ContEntry, n)
	for i := range asc {
		asc[i] = dataset.ContEntry{Val: float64(i), Rid: int32(i)}
		desc[i] = dataset.ContEntry{Val: float64(n - i), Rid: int32(i)}
	}
	for _, entries := range [][]dataset.ContEntry{asc, desc} {
		parts, _ := runSort(p, entries)
		checkGloballySorted(t, parts, entries)
		checkBalanced(t, parts, n, p)
	}
}

func TestSortSkewedDistribution(t *testing.T) {
	// 90% of values identical — sample sort must still terminate and
	// produce a balanced result (the shift fixes any sample skew).
	rng := rand.New(rand.NewSource(3))
	n, p := 500, 8
	entries := make([]dataset.ContEntry, n)
	for i := range entries {
		v := 1.0
		if rng.Float64() < 0.1 {
			v = rng.Float64() * 100
		}
		entries[i] = dataset.ContEntry{Val: v, Rid: int32(i)}
	}
	parts, _ := runSort(p, entries)
	checkGloballySorted(t, parts, entries)
	checkBalanced(t, parts, n, p)
}

func TestSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(8)
		n := rng.Intn(300)
		entries := randomEntries(rng, n, 1+rng.Intn(30))
		parts, _ := runSort(p, entries)
		var flat []dataset.ContEntry
		for _, part := range parts {
			flat = append(flat, part...)
		}
		if len(flat) != n {
			return false
		}
		for i := 1; i < len(flat); i++ {
			if less(flat[i], flat[i-1]) {
				return false
			}
		}
		// permutation check via rid multiset
		seen := make([]bool, n)
		for _, e := range flat {
			if seen[e.Rid] {
				return false
			}
			seen[e.Rid] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceFromSkewedOwnership(t *testing.T) {
	// All entries start on rank 0; rebalance must spread them evenly
	// while preserving order.
	p, n := 5, 103
	w := comm.NewWorld(p, timing.T3D())
	out := make([][]dataset.ContEntry, p)
	w.Run(func(c *comm.Comm) {
		var local []dataset.ContEntry
		if c.Rank() == 0 {
			local = make([]dataset.ContEntry, n)
			for i := range local {
				local[i] = dataset.ContEntry{Val: float64(i), Rid: int32(i)}
			}
		}
		out[c.Rank()] = Rebalance(c, local)
	})
	checkBalanced(t, out, n, p)
	pos := 0
	for _, part := range out {
		for _, e := range part {
			if e.Rid != int32(pos) {
				t.Fatalf("order not preserved at %d", pos)
			}
			pos++
		}
	}
}

func TestRebalanceEmpty(t *testing.T) {
	w := comm.NewWorld(3, timing.T3D())
	w.Run(func(c *comm.Comm) {
		if got := Rebalance(c, nil); len(got) != 0 {
			panic("empty rebalance should stay empty")
		}
	})
}

func TestSortAdvancesClockAndCommunicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	entries := randomEntries(rng, 1000, 500)
	_, w := runSort(4, entries)
	if w.MaxClock() <= 0 {
		t.Fatal("sort should cost modeled time")
	}
	for r, s := range w.Stats() {
		if s.BytesSent == 0 {
			t.Fatalf("rank %d sent no bytes during parallel sort", r)
		}
	}
}
