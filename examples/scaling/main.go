// Scaling: a miniature of the paper's Figure 3 — train the same dataset on
// 2..64 simulated processors and watch the modeled runtime, speedup, and
// per-processor memory, for two dataset sizes (relative speedups improve
// with problem size, the paper's central scalability observation).
package main

import (
	"fmt"
	"log"

	"repro/classify"
)

func main() {
	procs := []int{2, 4, 8, 16, 32, 64}

	for _, records := range []int{25_000, 100_000} {
		table, err := classify.GenerateQuest(classify.QuestConfig{
			Function: 2,
			Records:  records,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %d records ===\n", records)
		fmt.Printf("%5s %12s %10s %12s %14s\n", "procs", "runtime", "speedup", "efficiency", "peak mem/proc")
		var base float64
		for _, p := range procs {
			model, err := classify.Train(table, classify.Config{Processors: p})
			if err != nil {
				log.Fatal(err)
			}
			t := model.Metrics.ModeledSeconds
			if p == procs[0] {
				base = t * float64(p) // approximate serial time
			}
			var peak int64
			for _, m := range model.Metrics.PeakMemoryPerRank {
				if m > peak {
					peak = m
				}
			}
			speedup := base / t
			fmt.Printf("%5d %10.3fs %9.2fx %11.1f%% %12.2fMB\n",
				p, t, speedup, 100*speedup/float64(p), float64(peak)/1e6)
		}
		fmt.Println()
	}
	fmt.Println("larger problems keep the processors busy longer between")
	fmt.Println("synchronizations, so their speedup curves bend later — Figure 3(a).")
}
