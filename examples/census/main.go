// Census: income-group classification over a census-like schema — the kind
// of decision-support workload the paper's introduction motivates. Builds a
// hand-defined schema (mixed continuous and categorical attributes), a
// synthetic population with a noisy ground-truth rule, trains with
// ScalParC, prunes, and inspects the induced tree.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/classify"
)

func buildPopulation(n int, seed int64) (*classify.Table, error) {
	schema := &classify.Schema{
		Attrs: []classify.Attribute{
			{Name: "age", Kind: classify.Continuous},
			{Name: "hours_per_week", Kind: classify.Continuous},
			{Name: "education", Kind: classify.Categorical,
				Values: []string{"none", "highschool", "bachelors", "masters", "doctorate"}},
			{Name: "sector", Kind: classify.Categorical,
				Values: []string{"private", "public", "self_employed"}},
			{Name: "capital_gain", Kind: classify.Continuous},
		},
		Classes: []string{"<=50K", ">50K"},
	}
	tab := classify.NewTable(schema, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		age := 18 + rng.Float64()*62
		hours := 10 + rng.Float64()*60
		edu := rng.Intn(5)
		sector := rng.Intn(3)
		gain := 0.0
		if rng.Float64() < 0.2 {
			gain = rng.Float64() * 40000
		}
		// Ground truth: income driven by education, hours, and capital
		// gains, with 8% label noise.
		score := float64(edu)*1.5 + hours/20 + gain/10000
		if age > 35 && age < 60 {
			score += 1
		}
		if sector == 2 {
			score += 0.5
		}
		class := 0
		if score > 4.5 {
			class = 1
		}
		if rng.Float64() < 0.08 {
			class = 1 - class
		}
		if err := tab.AppendRow([]float64{age, hours, float64(edu), float64(sector), gain}, class); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

func main() {
	tab, err := buildPopulation(40_000, 7)
	if err != nil {
		log.Fatal(err)
	}
	train, test := tab.Split(0.8)

	// Noisy labels overfit an unbounded tree; train pruned and unpruned
	// to see the effect.
	unpruned, err := classify.Train(train, classify.Config{Processors: 16})
	if err != nil {
		log.Fatal(err)
	}
	pruned, err := classify.Train(train, classify.Config{Processors: 16, Prune: true})
	if err != nil {
		log.Fatal(err)
	}

	for _, m := range []struct {
		name  string
		model *classify.Model
	}{{"unpruned", unpruned}, {"pruned", pruned}} {
		eval, err := classify.Evaluate(m.model.Tree, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %4d nodes (depth %2d)  held-out accuracy %.4f\n",
			m.name, m.model.Tree.NumNodes(), m.model.Tree.Depth(), eval.Accuracy)
	}
	fmt.Printf("pruning collapsed %d internal nodes\n\n", pruned.Metrics.PrunedNodes)

	eval, err := classify.Evaluate(pruned.Tree, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned model per-class report:\n%s\n", eval)

	fmt.Println("top of the pruned tree:")
	dumpTop(pruned.Tree, 3)
}

// dumpTop prints the tree truncated to the given depth: the full rendering
// is indented two spaces per level, so lines are filtered by indentation.
func dumpTop(t *classify.Tree, maxDepth int) {
	var b strings.Builder
	if err := t.Dump(&b); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		depth := (len(line) - len(strings.TrimLeft(line, " "))) / 2
		if depth <= maxDepth {
			fmt.Println(line)
		}
	}
}
