// Quickstart: generate a synthetic training set, train a decision tree
// with ScalParC on a simulated 8-processor machine, and evaluate it.
package main

import (
	"fmt"
	"log"

	"repro/classify"
)

func main() {
	// The paper's workload: the Quest generator, function 2 (age/salary
	// bands), seven attributes, two classes.
	table, err := classify.GenerateQuest(classify.QuestConfig{
		Function: 2,
		Records:  50_000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := table.Split(0.75)

	model, err := classify.Train(train, classify.Config{
		Algorithm:  classify.ScalParC,
		Processors: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained on %d records with %s on %d simulated processors\n",
		train.NumRows(), model.Metrics.Algorithm, model.Metrics.Processors)
	fmt.Printf("tree: %d nodes, %d leaves, depth %d, induced in %d levels\n",
		model.Tree.NumNodes(), model.Tree.NumLeaves(), model.Tree.Depth(), model.Metrics.Levels)
	fmt.Printf("modeled parallel runtime %.3fs (presort %.3fs)\n",
		model.Metrics.ModeledSeconds, model.Metrics.PresortModeledSeconds)

	var peak int64
	for _, m := range model.Metrics.PeakMemoryPerRank {
		if m > peak {
			peak = m
		}
	}
	fmt.Printf("peak memory per processor %.2f MB, total traffic %.2f MB\n\n",
		float64(peak)/1e6, float64(model.Metrics.BytesSent)/1e6)

	eval, err := classify.Evaluate(model.Tree, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out %s", eval)
}
