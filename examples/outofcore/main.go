// Outofcore: the section-2 story, end to end. A dataset whose attribute
// lists should not live in memory is classified three ways:
//
//  1. SLIQ with disk-resident attribute lists (real files, real I/O),
//  2. the serial SPRINT-style classifier under a shrinking hash-table
//     memory budget (counting the staged splitting's re-reads), and
//  3. ScalParC on 16 simulated processors, which spreads every structure
//     O(N/p) and never stages.
//
// All three produce the identical tree — the difference is purely where
// the bytes go.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/classify"
	"repro/internal/datagen"
	"repro/internal/serial"
	"repro/internal/sliq"
	"repro/internal/splitter"
)

func main() {
	const records = 30_000
	tab, err := datagen.Generate(datagen.Config{
		Function: 2, Attrs: datagen.Seven, Seed: 11,
	}, records)
	if err != nil {
		log.Fatal(err)
	}
	cfg := splitter.Config{MaxDepth: 10}

	// 1. SLIQ out of core: attribute lists live on disk, scanned once per
	// level; only the O(N) class list stays in memory.
	dir, err := os.MkdirTemp("", "sliq-lists-")
	if err != nil {
		log.Fatal(err)
	}
	sliqTree, io, err := sliq.TrainDisk(tab, cfg, dir, 1<<16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLIQ (out of core):  lists on disk %.1f MB, read %.1f MB over %d sequential scans\n",
		float64(io.BytesWritten)/1e6, float64(io.BytesRead)/1e6, io.Scans)

	// 2. Serial SPRINT-style under a memory budget: the splitting phase
	// stages its rid->child hash table and re-reads the lists.
	for _, budget := range []int64{1 << 30, int64(records), int64(records) / 2} {
		serialTree, st, err := serial.TrainConstrained(tab, cfg, budget)
		if err != nil {
			log.Fatal(err)
		}
		if !serialTree.Equal(sliqTree) {
			log.Fatal("BUG: serial and SLIQ trees differ")
		}
		extra := float64(st.ExtraEntriesRead) / float64(st.EntriesRead-st.ExtraEntriesRead) * 100
		fmt.Printf("serial, %8s budget: %4d splitting stages, +%3.0f%% extra list reads\n",
			humanBytes(budget), st.Stages, extra)
	}

	// 3. ScalParC: the distributed node table replaces the serial hash
	// table; memory per processor is O(N/p).
	model, err := classify.Train(tab, classify.Config{Processors: 16, MaxDepth: 10})
	if err != nil {
		log.Fatal(err)
	}
	if !model.Tree.Equal(sliqTree) {
		log.Fatal("BUG: ScalParC tree differs")
	}
	var peak int64
	for _, m := range model.Metrics.PeakMemoryPerRank {
		if m > peak {
			peak = m
		}
	}
	fmt.Printf("ScalParC, 16 procs:  peak %.2f MB per processor, no staging, %.3fs modeled\n",
		float64(peak)/1e6, model.Metrics.ModeledSeconds)

	fmt.Println("\nall three classifiers induced the identical tree:")
	fmt.Printf("  %d nodes, depth %d, training accuracy ", sliqTree.NumNodes(), sliqTree.Depth())
	eval, err := classify.Evaluate(sliqTree, tab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.4f\n", eval.Accuracy)
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1000:
		return fmt.Sprintf("%.0fKB", float64(b)/1000)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
