// Fraud: loan-default screening on the Quest generator's financial
// attributes (function 7's disposable-income rule plays the ground truth),
// comparing ScalParC against the parallel SPRINT baseline on identical
// work — the section 3.2 comparison as an application would see it.
package main

import (
	"fmt"
	"log"

	"repro/classify"
)

func main() {
	// Function 7 labels by disposable income:
	// 0.67·(salary+commission) − 0.2·loan − 20000 > 0.
	table, err := classify.GenerateQuest(classify.QuestConfig{
		Function:   7,
		Records:    60_000,
		Seed:       3,
		LabelNoise: 0.05, // mislabeled applications
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := table.Split(0.8)

	const procs = 16
	fmt.Printf("screening %d applications on %d simulated processors\n\n", train.NumRows(), procs)

	results := map[classify.Algorithm]*classify.Model{}
	for _, algo := range []classify.Algorithm{classify.ScalParC, classify.SPRINT} {
		model, err := classify.Train(train, classify.Config{
			Algorithm:  algo,
			Processors: procs,
			MaxDepth:   12,
			Prune:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		results[algo] = model
	}

	fmt.Printf("%-10s %12s %16s %14s\n", "algorithm", "runtime", "peak mem/proc", "traffic/proc")
	for _, algo := range []classify.Algorithm{classify.ScalParC, classify.SPRINT} {
		m := results[algo].Metrics
		var peak int64
		for _, b := range m.PeakMemoryPerRank {
			if b > peak {
				peak = b
			}
		}
		fmt.Printf("%-10s %10.3fs %14.2fMB %12.2fMB\n",
			algo, m.ModeledSeconds, float64(peak)/1e6,
			float64(m.BytesRecv)/float64(m.Processors)/1e6)
	}

	// Identical trees — the formulations differ only in cost.
	if !results[classify.ScalParC].Tree.Equal(results[classify.SPRINT].Tree) {
		log.Fatal("BUG: the two formulations disagree on the model")
	}
	fmt.Println("\nboth formulations induce the identical tree")

	eval, err := classify.Evaluate(results[classify.ScalParC].Tree, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheld-out performance on %d unseen applications:\n%s", test.NumRows(), eval)

	// A screening decision for one applicant.
	applicant := []float64{
		58_000,  // salary
		12_000,  // commission
		41,      // age
		2,       // elevel
		210_000, // hvalue
		12,      // hyears
		150_000, // loan
	}
	class := results[classify.ScalParC].Tree.Predict(applicant)
	fmt.Printf("\nsample applicant classified as %s\n", table.Schema.Classes[class])
}
