// Package repro's benchmark harness: one testing.B benchmark per row of
// DESIGN.md's per-experiment index. Each benchmark reports, besides the
// host ns/op, the simulated machine's figures as custom metrics —
// modeled-s (the paper's runtime axis), peakMB/rank (the memory axis), and
// MB-recv/rank (the communication volume behind the scalability claims).
//
// cmd/benchrunner prints the same experiments as full tables at the
// paper's (scaled) sizes; these benchmarks are the quick, `go test -bench`
// entry point at a fixed small size.
package repro_test

import (
	"fmt"
	"testing"

	"repro/classify"
	"repro/internal/bench"
	"repro/internal/comm"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/nodetable"
	"repro/internal/scalparc"
	"repro/internal/splitter"
	"repro/internal/sprint"
	"repro/internal/timing"
)

const benchRecords = 20_000

func benchTable(b *testing.B) *dataset.Table {
	b.Helper()
	tab, err := datagen.Generate(datagen.Config{Function: 2, Attrs: datagen.Seven, Seed: 1}, benchRecords)
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

func reportRun(b *testing.B, res *scalparc.Result, p int) {
	b.Helper()
	b.ReportMetric(res.ModeledSeconds, "modeled-s")
	var peak, recv int64
	for _, m := range res.PeakMemoryPerRank {
		if m > peak {
			peak = m
		}
	}
	for _, s := range res.Stats {
		if s.BytesRecv > recv {
			recv = s.BytesRecv
		}
	}
	b.ReportMetric(float64(peak)/1e6, "peakMB/rank")
	b.ReportMetric(float64(recv)/1e6, "MB-recv/rank")
}

// BenchmarkFig3aRuntime is FIG3a: ScalParC induction runtime across
// processor counts at fixed N (modeled-s is the figure's y axis).
func BenchmarkFig3aRuntime(b *testing.B) {
	tab := benchTable(b)
	for _, p := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			w := comm.NewWorld(p, timing.T3D())
			for i := 0; i < b.N; i++ {
				res, err := scalparc.Train(w, tab, splitter.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportRun(b, res, p)
				}
			}
		})
	}
}

// BenchmarkFig3bMemory is FIG3b: the peakMB/rank metric across processor
// counts (one induction per iteration; the metric is the figure's y axis).
func BenchmarkFig3bMemory(b *testing.B) {
	tab := benchTable(b)
	for _, p := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			w := comm.NewWorld(p, timing.T3D())
			for i := 0; i < b.N; i++ {
				res, err := scalparc.Train(w, tab, splitter.Config{MaxDepth: 8})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportRun(b, res, p)
				}
			}
		})
	}
}

// BenchmarkSpeedupTrend is TXT-SPD: the same induction at two sizes on
// p=32; the ratio of modeled-s across sizes against the 8x record ratio
// shows the size-dependence of the speedup curves.
func BenchmarkSpeedupTrend(b *testing.B) {
	for _, n := range []int{benchRecords / 4, benchRecords * 2} {
		tab, err := datagen.Generate(datagen.Config{Function: 2, Attrs: datagen.Seven, Seed: 1}, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/p=32", n), func(b *testing.B) {
			w := comm.NewWorld(32, timing.T3D())
			for i := 0; i < b.N; i++ {
				res, err := scalparc.Train(w, tab, splitter.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportRun(b, res, 32)
				}
			}
		})
	}
}

// BenchmarkSprintComparison is CMP-SPRINT: identical induction under both
// splitting-phase formulations; compare peakMB/rank and MB-recv/rank.
func BenchmarkSprintComparison(b *testing.B) {
	tab := benchTable(b)
	algos := map[string]func(*comm.World) (*scalparc.Result, error){
		"scalparc": func(w *comm.World) (*scalparc.Result, error) {
			return scalparc.Train(w, tab, splitter.Config{MaxDepth: 8})
		},
		"sprint": func(w *comm.World) (*scalparc.Result, error) {
			return sprint.Train(w, tab, splitter.Config{MaxDepth: 8})
		},
	}
	for _, name := range []string{"scalparc", "sprint"} {
		b.Run(name+"/p=16", func(b *testing.B) {
			w := comm.NewWorld(16, timing.T3D())
			for i := 0; i < b.N; i++ {
				res, err := algos[name](w)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					reportRun(b, res, 16)
				}
			}
		})
	}
}

// BenchmarkBlockedUpdates is ABL-BLOCK: node-table updates under total
// skew, blocked vs unblocked.
func BenchmarkBlockedUpdates(b *testing.B) {
	const n, p = 50_000, 8
	for _, mode := range []struct {
		name  string
		block int
	}{{"blocked", n / p}, {"unblocked", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			w := comm.NewWorld(p, timing.T3D())
			as := make([]nodetable.Assignment, n)
			for rid := range as {
				as[rid] = nodetable.Assignment{Rid: int32(rid), Child: uint8(rid % 3)}
			}
			for i := 0; i < b.N; i++ {
				w.ResetMemory()
				w.Run(func(c *comm.Comm) {
					nt := nodetable.NewWithBlock(c, n, mode.block)
					defer nt.Free()
					if c.Rank() == 0 {
						nt.Update(as)
					} else {
						nt.Update(nil)
					}
				})
				if i == b.N-1 {
					b.ReportMetric(float64(w.PeakMemory()[0])/1e6, "peakMB/sender")
				}
			}
		})
	}
}

// BenchmarkAllToAll is MICRO: the all-to-all personalized exchange at the
// heart of the parallel hashing paradigm.
func BenchmarkAllToAll(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			w := comm.NewWorld(p, timing.T3D())
			payload := make([]int64, 1024)
			b.SetBytes(int64(p * len(payload) * 8))
			for i := 0; i < b.N; i++ {
				w.Run(func(c *comm.Comm) {
					send := make([][]int64, p)
					for d := range send {
						send[d] = payload
					}
					comm.AllToAll(c, send)
				})
			}
		})
	}
}

// BenchmarkInduction is EXP-HOTPATH's headline figure: one full induction
// at p=4 with allocation reporting; the BENCH_induction.json trajectory
// records this benchmark's figures (see internal/bench.Hotpath).
func BenchmarkInduction(b *testing.B) {
	bench.BenchInduction(b, bench.HotpathRecords, bench.HotpathProcs)
}

// BenchmarkGiniScan is MICRO: the FindSplitII split-point scan throughput
// (the production incremental kernel).
func BenchmarkGiniScan(b *testing.B) {
	bench.BenchGiniScanIncremental(b, bench.ScanEntries)
}

// BenchmarkGiniScanNaive is the frozen pre-optimization scan formulation;
// the ratio to BenchmarkGiniScan is the kernel speedup GUARD-HOTPATH pins.
func BenchmarkGiniScanNaive(b *testing.B) {
	bench.BenchGiniScanNaive(b, bench.ScanEntries)
}

// BenchmarkPredict is EXP-PREDICT's headline figure: the compiled batch
// engine classifying the 1M-row fixture table; the BENCH_predict.json
// trajectory records this benchmark's figures (see internal/bench.Predict).
func BenchmarkPredict(b *testing.B) {
	bench.BenchPredictCompiled(b, bench.PredictRows)
}

// BenchmarkPredictWalk is the hoisted pointer walker — the engine's
// differential oracle — on the same fixture.
func BenchmarkPredictWalk(b *testing.B) {
	bench.BenchPredictWalk(b, bench.PredictRows)
}

// BenchmarkPredictNaive is the frozen pre-engine PredictTable body; the
// ratio to BenchmarkPredict is the speedup GUARD-PREDICT pins.
func BenchmarkPredictNaive(b *testing.B) {
	bench.BenchPredictNaive(b, bench.PredictRows)
}

// BenchmarkNodeTable is MICRO: distributed node-table update + enquiry.
func BenchmarkNodeTable(b *testing.B) {
	bench.BenchNodeTable(b, 100_000, 8)
}

// BenchmarkParallelSort is MICRO: the presort (sample sort + shift).
func BenchmarkParallelSort(b *testing.B) {
	bench.BenchParallelSort(b, 200_000, 8)
}

// BenchmarkEndToEnd is the library-level path a user takes: generate,
// train, evaluate.
func BenchmarkEndToEnd(b *testing.B) {
	tab := benchTable(b)
	for i := 0; i < b.N; i++ {
		model, err := classify.Train(tab, classify.Config{Processors: 8, MaxDepth: 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := classify.Evaluate(model.Tree, tab); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialBaseline measures the serial classifier for host-level
// speedup comparisons.
func BenchmarkSerialBaseline(b *testing.B) {
	tab := benchTable(b)
	for i := 0; i < b.N; i++ {
		if _, err := classify.Train(tab, classify.Config{Algorithm: classify.Serial, MaxDepth: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchGridSmoke keeps the bench package exercised under plain go test
// (shape assertions live in internal/bench's own tests).
func TestBenchGridSmoke(t *testing.T) {
	cfg := bench.SweepConfig{
		Function: 2, Seed: 1, MaxDepth: 6,
		Sizes: []int{2000, 8000},
		Procs: []int{2, 8},
		Algo:  classify.ScalParC,
	}
	pts, err := cfg.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := bench.NewGrid(pts)
	if len(g.Sizes) != 2 || len(g.Procs) != 2 {
		t.Fatalf("grid shape: %v %v", g.Sizes, g.Procs)
	}
	if g.MustAt(8000, 2).ModeledSeconds <= g.MustAt(8000, 8).ModeledSeconds {
		t.Fatal("more processors should reduce the modeled runtime at this size")
	}
}
