package main

// TCP transport mode: -transport=tcp runs each rank as a separate OS
// process over localhost TCP instead of a goroutine on the simulated
// machine. The coordinator (the process the user started) binds every
// rank's listener, re-executes itself once per rank with the same
// command line plus the worker environment, and waits; each worker
// rebuilds the identical dataset from the shared flags, trains over the
// wire, and the surviving dense-rank-0 worker publishes the tree and
// metrics back through a result file.
//
// With -detect-timeout the workers suspect silent peers by heartbeat
// timeout, and with -checkpoint the coordinator becomes a supervisor:
// when an attempt dies wholesale (every survivor aborted, or the result
// writer was lost), it respawns the surviving world size from the last
// complete on-disk checkpoint instead of giving up.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/classify"
	"repro/internal/comm"
	"repro/internal/comm/tcptransport"
	"repro/internal/faults"
)

// tcpResult is what the surviving dense-rank-0 worker publishes for the
// coordinator: the induced tree plus the run metrics, with comm and
// memory stats pooled over every surviving rank.
type tcpResult struct {
	Tree    json.RawMessage  `json:"tree"`
	Metrics classify.Metrics `json:"metrics"`
}

// trainTCPCoordinator spawns the rank workers and reassembles their
// result into a Model, so the rest of run() treats a TCP run exactly
// like a simulated one. When checkpointing is on it also retries: a
// failed attempt is relaunched at the surviving world size with the
// resume environment set, and with the fault specs cleared — injected
// faults are one-shot, they struck the attempt they were scheduled for.
func trainTCPCoordinator(args []string, procs int, workerOut io.Writer, detect time.Duration, ckptDir string, stdout io.Writer) (*classify.Model, error) {
	opts := tcptransport.LaunchOpts{}
	if detect > 0 {
		// The watchdog grace mirrors the detection timeout: by the time
		// the run is decided the survivors already waited one detect to
		// suspect the hung rank, so one more is enough for every live
		// worker to finish writing its files. The floor absorbs process
		// scheduling noise at very small timeouts.
		opts.Grace = detect
		if opts.Grace < 100*time.Millisecond {
			opts.Grace = 100 * time.Millisecond
		}
	}
	p := procs
	launchArgs := args
	for attempt := 0; ; attempt++ {
		job, err := tcptransport.LaunchWith(p, launchArgs, workerOut, opts)
		if err != nil {
			return nil, err
		}
		data, werr := job.Wait()
		if werr == nil {
			job.Close()
			var res tcpResult
			if err := json.Unmarshal(data, &res); err != nil {
				return nil, fmt.Errorf("decoding worker result: %w", err)
			}
			tree, err := classify.DecodeTree(bytes.NewReader(res.Tree))
			if err != nil {
				return nil, fmt.Errorf("decoding worker tree: %w", err)
			}
			// Coordinator-level respawns are recoveries the workers of the
			// final attempt never saw; fold them into the reported count.
			res.Metrics.Recoveries += attempt
			return &classify.Model{Tree: tree, Metrics: res.Metrics}, nil
		}
		survivors := job.Survivors()
		job.Close()
		if ckptDir == "" || survivors < 1 || attempt+1 >= procs {
			return nil, werr
		}
		fmt.Fprintf(stdout, "tcp attempt %d failed (%v); respawning %d survivor(s) from checkpoint %s\n",
			attempt+1, werr, survivors, ckptDir)
		p = survivors
		opts.Resume = true
		// Flag order wins ties, so appending overrides any fault spec in
		// the original command line without rewriting it.
		launchArgs = append(append([]string(nil), args...), "-faults=", "-wire-faults=")
	}
}

// trainTCPWorker is one rank's whole life: connect the mesh described by
// the worker environment, train, and (if this process ends up as the
// lowest surviving physical rank) publish the result. Every exit
// publishes a status verdict so the coordinator can size a respawn: a
// rank killed by fault injection is "dead", a rank that lost every peer
// under detection is "orphaned", and a rank that finished is "ok". A
// hung rank writes nothing — that silence is what the watchdog keys on.
func trainTCPWorker(train *classify.Table, cfg classify.Config, detect time.Duration, wireSpec string, faultSeed int64) error {
	tr, err := tcptransport.FromEnvTimeout(detect)
	if err != nil {
		return err
	}
	defer tr.Close()
	if wireSpec != "" {
		ws, err := faults.ParseWire(wireSpec, faultSeed, tr.Size())
		if err != nil {
			return err
		}
		tr.SetWireInjector(ws)
	}
	if tcptransport.IsResume() {
		cfg.Resume = true
	}
	mach := cfg.Machine
	if mach == (classify.Machine{}) {
		mach = classify.DefaultMachine()
	}
	w := comm.NewTransportWorld(tr, mach)
	if detect > 0 {
		// Charge the modeled clocks the same timeout the wire observes,
		// so the reported runtime reflects the detection latency.
		w.SetDetectTimeout(detect.Seconds())
	}
	model, err := classify.TrainWorld(w, train, cfg)
	if err != nil {
		if errors.Is(err, tcptransport.ErrOrphaned) {
			_ = tcptransport.WriteStatus("orphaned")
			return nil
		}
		if !w.Live(tr.Rank()) {
			_ = tcptransport.WriteStatus("dead")
			return nil
		}
		return err
	}
	poolStats(w, &model.Metrics)
	for phys := 0; phys < tr.Rank(); phys++ {
		if w.Live(phys) {
			return tcptransport.WriteStatus("ok")
		}
	}
	// Per-process phase traces don't cross the wire; -phases and -trace
	// are rejected up front for -transport=tcp.
	model.Metrics.Trace = nil
	var tree bytes.Buffer
	if err := model.Tree.Encode(&tree); err != nil {
		return err
	}
	data, err := json.Marshal(tcpResult{Tree: tree.Bytes(), Metrics: model.Metrics})
	if err != nil {
		return err
	}
	if err := tcptransport.WriteResult(data); err != nil {
		return err
	}
	// The status write comes after the result write: the coordinator's
	// watchdog starts its grace clock at the first "ok".
	return tcptransport.WriteStatus("ok")
}

// shrinkFailed runs the membership vote and reports whether the vote
// itself failed for this rank (evicted or orphaned), absorbing the comm
// layer's *RankFailure panic.
func shrinkFailed(c *comm.Comm) (failed bool) {
	defer func() {
		switch e := recover().(type) {
		case nil:
		case *comm.RankFailure:
			failed = true
		default:
			panic(e)
		}
	}()
	c.Shrink()
	return false
}

// poolStats runs one more SPMD section over the survivors to pool the
// per-process communication and memory stats: a transport-backed world
// only observes its own rank, so without this the published metrics
// would cover 1/p of the machine.
func poolStats(w *comm.World, m *classify.Metrics) {
	w.SetFaultInjector(nil) // training is done; no more injected faults
	var sent, recv, suspicions int64
	var peaks []int64
	w.Run(func(c *comm.Comm) {
		for {
			ok := func() (ok bool) {
				defer func() {
					if r := recover(); r != nil {
						var rf *comm.RankFailure
						if e, isErr := r.(error); isErr && errors.As(e, &rf) && rf.Recoverable() {
							return
						}
						panic(r)
					}
				}()
				st := c.Stats()
				mine := []int64{st.BytesSent, st.BytesRecv, c.Mem().Peak(), st.Suspicions}
				all := comm.AllgatherFlat(c, mine)
				sent, recv, suspicions, peaks = 0, 0, 0, peaks[:0]
				for i := 0; i+3 < len(all); i += 4 {
					sent += all[i]
					recv += all[i+1]
					peaks = append(peaks, all[i+2])
					suspicions += all[i+3]
				}
				return true
			}()
			if ok {
				return
			}
			// A peer process died between training and the stats
			// exchange: shrink with the other survivors and retry.
			if shrinkFailed(c) {
				// The vote itself evicted or orphaned this rank; the
				// training result is already in hand, so publish this
				// rank's own stats unpooled rather than aborting.
				st := c.Stats()
				sent, recv, suspicions = st.BytesSent, st.BytesRecv, st.Suspicions
				peaks = []int64{c.Mem().Peak()}
				return
			}
		}
	})
	m.BytesSent, m.BytesRecv = sent, recv
	m.PeakMemoryPerRank = peaks
	m.FinalRanks = w.LiveRanks()
	m.Suspicions = suspicions
}
