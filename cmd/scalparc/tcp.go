package main

// TCP transport mode: -transport=tcp runs each rank as a separate OS
// process over localhost TCP instead of a goroutine on the simulated
// machine. The coordinator (the process the user started) binds every
// rank's listener, re-executes itself once per rank with the same
// command line plus the worker environment, and waits; each worker
// rebuilds the identical dataset from the shared flags, trains over the
// wire, and the surviving dense-rank-0 worker publishes the tree and
// metrics back through a result file.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/classify"
	"repro/internal/comm"
	"repro/internal/comm/tcptransport"
)

// tcpResult is what the surviving dense-rank-0 worker publishes for the
// coordinator: the induced tree plus the run metrics, with comm and
// memory stats pooled over every surviving rank.
type tcpResult struct {
	Tree    json.RawMessage  `json:"tree"`
	Metrics classify.Metrics `json:"metrics"`
}

// trainTCPCoordinator spawns the rank workers and reassembles their
// result into a Model, so the rest of run() treats a TCP run exactly
// like a simulated one.
func trainTCPCoordinator(args []string, procs int, workerOut io.Writer) (*classify.Model, error) {
	job, err := tcptransport.Launch(procs, args, workerOut)
	if err != nil {
		return nil, err
	}
	data, err := job.Wait()
	if err != nil {
		return nil, err
	}
	var res tcpResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("decoding worker result: %w", err)
	}
	tree, err := classify.DecodeTree(bytes.NewReader(res.Tree))
	if err != nil {
		return nil, fmt.Errorf("decoding worker tree: %w", err)
	}
	return &classify.Model{Tree: tree, Metrics: res.Metrics}, nil
}

// trainTCPWorker is one rank's whole life: connect the mesh described by
// the worker environment, train, and (if this process ends up as the
// lowest surviving physical rank) publish the result. A rank killed by
// fault injection exits cleanly — its death is the survivors' problem.
func trainTCPWorker(train *classify.Table, cfg classify.Config) error {
	tr, err := tcptransport.FromEnv()
	if err != nil {
		return err
	}
	defer tr.Close()
	mach := cfg.Machine
	if mach == (classify.Machine{}) {
		mach = classify.DefaultMachine()
	}
	w := comm.NewTransportWorld(tr, mach)
	model, err := classify.TrainWorld(w, train, cfg)
	if err != nil {
		if !w.Live(tr.Rank()) {
			return nil
		}
		return err
	}
	poolStats(w, &model.Metrics)
	for phys := 0; phys < tr.Rank(); phys++ {
		if w.Live(phys) {
			return nil
		}
	}
	// Per-process phase traces don't cross the wire; -phases and -trace
	// are rejected up front for -transport=tcp.
	model.Metrics.Trace = nil
	var tree bytes.Buffer
	if err := model.Tree.Encode(&tree); err != nil {
		return err
	}
	data, err := json.Marshal(tcpResult{Tree: tree.Bytes(), Metrics: model.Metrics})
	if err != nil {
		return err
	}
	return tcptransport.WriteResult(data)
}

// poolStats runs one more SPMD section over the survivors to pool the
// per-process communication and memory stats: a transport-backed world
// only observes its own rank, so without this the published metrics
// would cover 1/p of the machine.
func poolStats(w *comm.World, m *classify.Metrics) {
	w.SetFaultInjector(nil) // training is done; no more injected faults
	var sent, recv int64
	var peaks []int64
	w.Run(func(c *comm.Comm) {
		for {
			ok := func() (ok bool) {
				defer func() {
					if r := recover(); r != nil {
						var rf *comm.RankFailure
						if e, isErr := r.(error); isErr && errors.As(e, &rf) && rf.Recoverable() {
							return
						}
						panic(r)
					}
				}()
				st := c.Stats()
				mine := []int64{st.BytesSent, st.BytesRecv, c.Mem().Peak()}
				all := comm.AllgatherFlat(c, mine)
				sent, recv, peaks = 0, 0, peaks[:0]
				for i := 0; i+2 < len(all); i += 3 {
					sent += all[i]
					recv += all[i+1]
					peaks = append(peaks, all[i+2])
				}
				return true
			}()
			if ok {
				return
			}
			// A peer process died between training and the stats
			// exchange: shrink with the other survivors and retry.
			c.Shrink()
		}
	})
	m.BytesSent, m.BytesRecv = sent, recv
	m.PeakMemoryPerRank = peaks
	m.FinalRanks = w.LiveRanks()
}
