package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/comm/tcptransport"
)

// TestMain lets the test binary serve as the rank-worker re-exec target:
// tcptransport.Launch re-executes the current executable, which in a
// test process is the test binary itself. Worker invocations run the
// real CLI entry point and exit before the testing framework takes over.
func TestMain(m *testing.M) {
	if tcptransport.IsWorker() {
		if err := run(os.Args[1:], io.Discard); err != nil {
			fmt.Fprintln(os.Stderr, "scalparc worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestTCPDifferential is the end-to-end transport differential: train
// the same Quest dataset on the simulated backend and on real worker
// processes over localhost TCP, and assert the induced trees are
// byte-identical at each processor count.
func TestTCPDifferential(t *testing.T) {
	dir := t.TempDir()
	for _, procs := range []int{2, 4} {
		base := []string{"-quest-function", "3", "-records", "3000", "-seed", "11",
			"-procs", fmt.Sprint(procs)}
		simPath := filepath.Join(dir, fmt.Sprintf("sim-%d.json", procs))
		tcpPath := filepath.Join(dir, fmt.Sprintf("tcp-%d.json", procs))
		simArgs := append(append([]string(nil), base...), "-json-out", simPath)
		tcpArgs := append(append([]string(nil), base...), "-transport=tcp", "-json-out", tcpPath)
		var simOut, tcpOut bytes.Buffer
		if err := run(simArgs, &simOut); err != nil {
			t.Fatalf("p=%d sim: %v", procs, err)
		}
		if err := run(tcpArgs, &tcpOut); err != nil {
			t.Fatalf("p=%d tcp: %v", procs, err)
		}
		sim, err := os.ReadFile(simPath)
		if err != nil {
			t.Fatal(err)
		}
		tcp, err := os.ReadFile(tcpPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sim, tcp) {
			t.Fatalf("p=%d: trees diverged between backends\nsim: %s\ntcp: %s", procs, sim, tcp)
		}
		// The backends must also agree on the modeled machine: same
		// deterministic runtime to the picosecond.
		simLine, tcpLine := pick(simOut.String(), "modeled runtime"), pick(tcpOut.String(), "modeled runtime")
		if simLine == "" || simLine != tcpLine {
			t.Fatalf("p=%d: modeled runtimes diverged:\nsim: %q\ntcp: %q", procs, simLine, tcpLine)
		}
	}
}

// pick returns the (trimmed) first output line containing the substring,
// stripping the wall-clock figure, which is real time and never
// reproducible.
func pick(out, substr string) string {
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, substr) {
			if i := strings.Index(line, ", wall"); i >= 0 {
				line = line[:i]
			}
			return strings.TrimSpace(line)
		}
	}
	return ""
}

// TestTCPCrashRecovery kills one worker process mid-training with an
// injected fault and expects the survivors to shrink, replay, and
// deliver the same tree a fault-free run induces.
func TestTCPCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-quest-function", "2", "-records", "2000", "-seed", "7", "-procs", "3"}
	cleanPath := filepath.Join(dir, "clean.json")
	crashPath := filepath.Join(dir, "crash.json")
	cleanArgs := append(append([]string(nil), base...), "-json-out", cleanPath)
	crashArgs := append(append([]string(nil), base...), "-transport=tcp",
		"-faults", "crash@FindSplitI:2:1", "-json-out", crashPath)
	if err := run(cleanArgs, io.Discard); err != nil {
		t.Fatalf("clean: %v", err)
	}
	var out bytes.Buffer
	if err := run(crashArgs, &out); err != nil {
		t.Fatalf("crash: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "recovered from 1 failure(s)") || !strings.Contains(s, "finished on 2 processors") {
		t.Fatalf("crash run did not report recovery:\n%s", s)
	}
	clean, err := os.ReadFile(cleanPath)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := os.ReadFile(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, crashed) {
		t.Fatal("post-recovery tree differs from the fault-free tree")
	}
}

// TestTCPFlagValidation pins the -transport=tcp flag incompatibilities.
func TestTCPFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-quest-function", "1", "-records", "200", "-transport", "bogus"},
		{"-quest-function", "1", "-records", "200", "-transport", "tcp", "-algo", "serial"},
		{"-quest-function", "1", "-records", "200", "-transport", "tcp", "-cv", "3"},
		{"-quest-function", "1", "-records", "200", "-transport", "tcp", "-checkpoint-every", "1"},
		{"-quest-function", "1", "-records", "200", "-transport", "tcp", "-phases"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("run(%v) accepted an invalid flag combination", args)
		}
	}
}
