package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/classify"
)

func TestRunQuestMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "2", "-records", "2000", "-procs", "4", "-seed", "7",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"generated quest F2", "algorithm scalparc on 4 processors",
		"modeled runtime", "training", "held-out", "accuracy"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSerialAndSprintModes(t *testing.T) {
	for _, algo := range []string{"serial", "sprint"} {
		var out bytes.Buffer
		err := run([]string{"-quest-function", "1", "-records", "500", "-algo", algo, "-procs", "2"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "algorithm "+algo) {
			t.Fatalf("%s output:\n%s", algo, out.String())
		}
	}
}

func TestRunCSVModeWithSchema(t *testing.T) {
	dir := t.TempDir()

	schemaPath := filepath.Join(dir, "schema.json")
	schemaJSON := `{
	  "attrs": [
	    {"name": "x", "kind": "continuous"},
	    {"name": "color", "kind": "categorical", "values": ["red", "blue"]}
	  ],
	  "classes": ["no", "yes"]
	}`
	if err := os.WriteFile(schemaPath, []byte(schemaJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	schema := &classify.Schema{
		Attrs: []classify.Attribute{
			{Name: "x", Kind: classify.Continuous},
			{Name: "color", Kind: classify.Categorical, Values: []string{"red", "blue"}},
		},
		Classes: []string{"no", "yes"},
	}
	tab := classify.NewTable(schema, 20)
	for i := 0; i < 20; i++ {
		cls := 0
		if i >= 10 {
			cls = 1
		}
		if err := tab.AppendRow([]float64{float64(i), float64(i % 2)}, cls); err != nil {
			t.Fatal(err)
		}
	}
	trainPath := filepath.Join(dir, "train.csv")
	f, err := os.Create(trainPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := classify.WriteCSV(f, tab); err != nil {
		t.Fatal(err)
	}
	f.Close()

	treePath := filepath.Join(dir, "tree.json")
	var out bytes.Buffer
	err = run([]string{
		"-schema", schemaPath, "-train", trainPath,
		"-procs", "2", "-dump", "-json-out", treePath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "loaded 20 training records") {
		t.Fatalf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "x <= 9") {
		t.Fatalf("dump should show the obvious split:\n%s", out.String())
	}

	tf, err := os.Open(treePath)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	tr, err := classify.DecodeTree(tf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Predict([]float64{3, 0}) != 0 || tr.Predict([]float64{15, 1}) != 1 {
		t.Fatal("persisted tree mispredicts")
	}
}

func TestRunImportance(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "1", "-records", "800", "-algo", "serial", "-importance",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "attribute importance") {
		t.Fatalf("output missing importance report:\n%s", s)
	}
	// F1 depends on age alone: age must lead the report.
	idx := strings.Index(s, "attribute importance")
	if !strings.Contains(s[idx:], "age") {
		t.Fatalf("age missing from importance:\n%s", s[idx:])
	}
}

func TestRunCrossValidation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "1", "-records", "600", "-procs", "2", "-cv", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"3-fold cross-validation over 600 records", "fold 0", "fold 2", "mean accuracy"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "held-out") {
		t.Fatal("cross-validation mode should replace the single split report")
	}
}

func TestRunDotOutput(t *testing.T) {
	dotPath := filepath.Join(t.TempDir(), "tree.dot")
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "1", "-records", "300", "-algo", "sliq", "-dot-out", dotPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph tree {") || !strings.Contains(string(data), "age") {
		t.Fatalf("dot file:\n%s", data)
	}
	if !strings.Contains(out.String(), "algorithm sliq") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := loadSchema(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadSchema(write("bad.json", "{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	badKind := `{"attrs":[{"name":"x","kind":"numeric"}],"classes":["a","b"]}`
	if _, err := loadSchema(write("kind.json", badKind)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	invalid := `{"attrs":[{"name":"x","kind":"continuous"}],"classes":["a"]}`
	if _, err := loadSchema(write("invalid.json", invalid)); err == nil {
		t.Fatal("single-class schema accepted")
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no data source accepted")
	}
	if err := run([]string{"-quest-function", "1", "-records", "100", "-algo", "magic"}, &out); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-train", "x.csv"}, &out); err == nil {
		t.Fatal("-train without -schema accepted")
	}
	base := []string{"-quest-function", "1", "-records", "100"}
	for _, tc := range []struct {
		name  string
		extra []string
	}{
		{"-bins with -split=exact", []string{"-bins", "32"}},
		{"-vote-k with -split=exact", []string{"-vote-k", "4"}},
		{"-vote-k with -split=binned", []string{"-split", "binned", "-vote-k", "4"}},
		{"unknown -split", []string{"-split", "magic"}},
	} {
		if err := run(append(append([]string{}, base...), tc.extra...), &out); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
	// -bins is shared by binned and vote; both must accept it.
	for _, mode := range []string{"binned", "vote"} {
		if err := run(append(append([]string{}, base...), "-split", mode, "-bins", "16"), &out); err != nil {
			t.Fatalf("-split=%s -bins 16 rejected: %v", mode, err)
		}
	}
}

func TestRunVoteMode(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "2", "-records", "1500", "-procs", "4", "-seed", "7",
		"-split", "vote", "-vote-k", "3", "-bins", "32",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"vote split finding: top-3 attribute nominations per rank",
		"algorithm scalparc on 4 processors", "held-out"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunPhasesAndTraceOutput(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "2", "-records", "2000", "-procs", "4", "-seed", "7",
		"-phases", "-trace", tracePath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"phase breakdown", "phase total", "FindSplitI", "PerformSplitII", "wrote Chrome trace"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	ranks := map[any]bool{}
	complete := 0
	for _, e := range decoded.TraceEvents {
		if e["ph"] == "X" {
			complete++
			ranks[e["tid"]] = true
		}
	}
	if complete == 0 {
		t.Fatal("trace file has no complete events")
	}
	if len(ranks) != 4 {
		t.Fatalf("trace covers %d ranks, want 4", len(ranks))
	}
}

func TestRunPhasesSliq(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quest-function", "1", "-records", "500", "-algo", "sliq", "-phases"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "phase breakdown") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunPhasesSerialRejected(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-quest-function", "1", "-records", "500", "-algo", "serial", "-phases"}, &out)
	if err == nil {
		t.Fatal("serial has no trace; -phases must be rejected")
	}
}

func TestRunFaultFlagValidation(t *testing.T) {
	var out bytes.Buffer
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"faults without scalparc", []string{"-quest-function", "1", "-records", "100",
			"-algo", "serial", "-faults", "crash@FindSplitI:1:0"}, "-algo scalparc"},
		{"checkpoint without scalparc", []string{"-quest-function", "1", "-records", "100",
			"-algo", "sprint", "-procs", "2", "-checkpoint-every", "1"}, "-algo scalparc"},
		{"random spec without seed", []string{"-quest-function", "1", "-records", "100",
			"-faults", "random:3"}, "seed"},
		{"bad fault spec", []string{"-quest-function", "1", "-records", "100",
			"-faults", "melt@FindSplitI:1:0"}, "unknown kind"},
		{"fault rank out of range", []string{"-quest-function", "1", "-records", "100",
			"-procs", "2", "-faults", "crash@FindSplitI:1:7"}, "out of range"},
		{"negative checkpoint interval", []string{"-quest-function", "1", "-records", "100",
			"-checkpoint-every", "-2"}, "checkpoint-every"},
		{"zero detect-timeout", []string{"-quest-function", "1", "-records", "100",
			"-transport", "tcp", "-procs", "2", "-detect-timeout", "0s"}, "must be > 0"},
		{"negative detect-timeout", []string{"-quest-function", "1", "-records", "100",
			"-transport", "tcp", "-procs", "2", "-detect-timeout", "-1s"}, "must be > 0"},
		{"detect-timeout on sim", []string{"-quest-function", "1", "-records", "100",
			"-procs", "2", "-detect-timeout", "1s"}, "requires -transport=tcp"},
		{"wire-faults on sim", []string{"-quest-function", "1", "-records", "100",
			"-procs", "2", "-wire-faults", "reset@1:0"}, "requires -transport=tcp"},
		{"hang without detect-timeout", []string{"-quest-function", "1", "-records", "100",
			"-transport", "tcp", "-procs", "2", "-faults", "hang@FindSplitI:1:1"}, "-detect-timeout"},
		{"wire hang without detect-timeout", []string{"-quest-function", "1", "-records", "100",
			"-transport", "tcp", "-procs", "2", "-wire-faults", "hang@1:0"}, "-detect-timeout"},
		{"bad wire-faults spec", []string{"-quest-function", "1", "-records", "100",
			"-transport", "tcp", "-procs", "2", "-wire-faults", "melt@1:0"}, "-wire-faults"},
		{"wire-faults rank out of range", []string{"-quest-function", "1", "-records", "100",
			"-transport", "tcp", "-procs", "2", "-wire-faults", "reset@7:0"}, "-wire-faults"},
	}
	for _, c := range cases {
		err := run(c.args, &out)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestRunRejectsUnwritableCheckpointDir(t *testing.T) {
	// The checkpoint path nests under a regular file, so creating it fails
	// on every platform and uid (chmod-based unwritability is ignored for
	// root).
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-quest-function", "1", "-records", "100",
		"-checkpoint", filepath.Join(blocker, "sub")}, &out)
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("unwritable checkpoint dir: err = %v", err)
	}
}

// TestRunCrashRecoveryEndToEnd drives the full CLI path: inject a crash,
// checkpoint to disk, and confirm the run reports the recovery.
func TestRunCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "2", "-records", "1500", "-procs", "4", "-seed", "7",
		"-faults", "crash@PerformSplitII:2:1", "-checkpoint", dir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"recovered from 1 failure(s)", "lost ranks [1]", "finished on 3 processors"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// The recovered run must classify exactly like a fault-free one: compare
// the dumped trees.
func TestRunFaultyTreeMatchesCleanTree(t *testing.T) {
	base := []string{"-quest-function", "3", "-records", "1000", "-procs", "3", "-seed", "9", "-dump"}
	var clean, faulty bytes.Buffer
	if err := run(base, &clean); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-faults", "crash@FindSplitI:1:2"), &faulty); err != nil {
		t.Fatal(err)
	}
	treeOf := func(s string) string {
		if i := strings.Index(s, "training"); i >= 0 {
			return s[i:]
		}
		return s
	}
	if treeOf(clean.String()) != treeOf(faulty.String()) {
		t.Fatalf("recovered tree differs from fault-free tree:\n--- clean ---\n%s\n--- faulty ---\n%s",
			clean.String(), faulty.String())
	}
}

func TestRunCompileStats(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "2", "-records", "2000", "-algo", "serial", "-compile",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "compiled model:") || !strings.Contains(s, "bytes flat") {
		t.Fatalf("output missing compiled-model stats:\n%s", s)
	}
}
