// Command scalparc trains a decision tree with the ScalParC parallel
// classifier (or the serial / parallel-SPRINT baselines) and reports the
// run's modeled runtime, per-processor memory, and accuracy.
//
// Data can come from a CSV file with a JSON schema, or be generated with
// the built-in Quest generator:
//
//	scalparc -quest-function 2 -records 200000 -procs 16
//	scalparc -schema schema.json -train train.csv -test test.csv -procs 8
//	scalparc -quest-function 7 -records 50000 -algo sprint -procs 8 -dump
//
// The JSON schema format:
//
//	{"attrs": [{"name": "salary", "kind": "continuous"},
//	           {"name": "elevel", "kind": "categorical", "values": ["a","b"]}],
//	 "classes": ["GroupA", "GroupB"]}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/classify"
	"repro/internal/comm/tcptransport"
	"repro/internal/faults"
	"repro/internal/infer"
	"repro/internal/scalparc"
)

// runForest is the -forest arm of run: train a bagged ensemble, report its
// aggregate figures, evaluate by compiled majority vote, and optionally
// write the forest JSON (readable back by -serve's model store and
// classify.DecodeModel).
func runForest(stdout io.Writer, train, test *classify.Table, engine classify.Config,
	trees int, seed uint64, featureSample, parallel int, ckptDir, jsonOut string, compileStats bool) error {
	fm, err := classify.TrainForest(train, classify.ForestConfig{
		Trees:         trees,
		Seed:          seed,
		FeatureSample: featureSample,
		Parallel:      parallel,
		CheckpointDir: ckptDir,
		Engine:        engine,
	})
	if err != nil {
		return err
	}
	mm := fm.Metrics
	fmt.Fprintf(stdout, "forest of %d trees on %d processors each: %d trained, %d restored, %d lost\n",
		mm.Trees, engine.Processors, mm.Trained, mm.Restored, len(mm.Lost))
	fmt.Fprintf(stdout, "modeled runtime %.3fs summed over trained trees, wall %.3fs; total traffic %.2f MB sent\n",
		mm.ModeledSeconds, mm.WallSeconds, float64(mm.BytesSent)/1e6)
	if len(mm.Lost) > 0 {
		fmt.Fprintf(stdout, "lost trees %v: the ensemble continues on the survivors\n", mm.Lost)
	}
	if mm.VoteFallbacks > 0 {
		fmt.Fprintf(stdout, "vote split finding fell back to full histograms %d time(s)\n", mm.VoteFallbacks)
	}

	if compileStats {
		m, err := infer.CompileForest(fm.Forest)
		if err != nil {
			return err
		}
		st := m.Stats()
		fmt.Fprintf(stdout, "compiled forest: %d trees, %d nodes (%d leaves), depth %d, %d subset words, %d bytes flat\n",
			st.Trees, st.Nodes, st.Leaves, st.Depth, st.SubsetWords, st.Bytes)
	}

	trainEval, err := classify.EvaluateForest(fm.Forest, train)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "training   %s", trainEval)
	if test != nil && test.NumRows() > 0 {
		testEval, err := classify.EvaluateForest(fm.Forest, test)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "held-out   %s", testEval)
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fm.Forest.Encode(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote forest JSON to %s\n", jsonOut)
	}
	return nil
}

type jsonAttr struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Values []string `json:"values,omitempty"`
}

type jsonSchema struct {
	Attrs   []jsonAttr `json:"attrs"`
	Classes []string   `json:"classes"`
}

func loadSchema(path string) (*classify.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var js jsonSchema
	if err := json.NewDecoder(f).Decode(&js); err != nil {
		return nil, fmt.Errorf("parsing schema %s: %w", path, err)
	}
	s := &classify.Schema{Classes: js.Classes}
	for _, a := range js.Attrs {
		attr := classify.Attribute{Name: a.Name, Values: a.Values}
		switch a.Kind {
		case "continuous":
			attr.Kind = classify.Continuous
		case "categorical":
			attr.Kind = classify.Categorical
		default:
			return nil, fmt.Errorf("attribute %q: unknown kind %q (want continuous or categorical)", a.Name, a.Kind)
		}
		s.Attrs = append(s.Attrs, attr)
	}
	return s, s.Validate()
}

func loadCSV(path string, s *classify.Schema) (*classify.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return classify.ReadCSV(f, s)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scalparc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if tcptransport.IsWorker() {
		// Rank-worker re-execution: the coordinator owns stdout; worker
		// chatter (data generation echoes etc.) is dropped.
		stdout = io.Discard
	}
	fs := flag.NewFlagSet("scalparc", flag.ContinueOnError)
	algo := fs.String("algo", "scalparc", "algorithm: scalparc, sprint, serial, or sliq")
	transport := fs.String("transport", "sim", "communication backend: sim (in-process simulated machine) or tcp (one OS process per rank over localhost TCP)")
	procs := fs.Int("procs", 4, "simulated processor count")
	depth := fs.Int("depth", 0, "maximum tree depth (0 = unlimited)")
	minSplit := fs.Int("minsplit", 2, "minimum node size to split")
	prune := fs.Bool("prune", false, "apply pessimistic post-pruning")
	binaryCats := fs.Bool("binary-cats", false, "binary subset splits for categorical attributes")
	splitMode := fs.String("split", "exact", "split finding: exact (the paper's algorithm), binned (quantile histograms), or vote (top-k attribute voting; scalparc only)")
	bins := fs.Int("bins", 0, "quantile bin cap for -split=binned or -split=vote (0 = default 256)")
	voteK := fs.Int("vote-k", 0, "per-rank attribute nominations per node for -split=vote (0 = default 8)")
	forest := fs.Int("forest", 0, "train a bagged forest of this many trees instead of a single tree (scalparc only)")
	featureSample := fs.Int("feature-sample", 0, "per-node attribute subset size for -forest (0 = bagging only)")
	forestSeed := fs.Uint64("forest-seed", 1, "bootstrap/feature-stream seed for -forest")
	forestParallel := fs.Int("forest-parallel", 0, "how many forest trees train concurrently (0 = 1; results are identical at any width)")
	forestCkpt := fs.String("forest-checkpoint", "", "persist each completed forest tree to this directory and restore completed trees on a rerun")
	faultSpec := fs.String("faults", "", "fault-injection spec, e.g. crash@FindSplitI:1:2 or random:4:crash,straggle (scalparc only)")
	wireFaults := fs.String("wire-faults", "", "socket-level fault spec for -transport=tcp, e.g. reset@1:0 or delay@0:1:50ms#2 or random:3:reset,truncate")
	faultSeed := fs.Int64("fault-seed", 0, "seed for random: fault specs (required non-zero for them)")
	detectTimeout := fs.Duration("detect-timeout", 0, "suspect a silent peer after this long without traffic (-transport=tcp; 0 = fail-stop EOF detection only)")
	ckptDir := fs.String("checkpoint", "", "persist level-boundary checkpoints to this directory (scalparc only)")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint every k tree levels (0 = off, or 1 when -checkpoint is set)")
	compileStats := fs.Bool("compile", false, "compile the tree for batch inference and print the flat-table stats")
	dump := fs.Bool("dump", false, "print the induced tree")
	importance := fs.Bool("importance", false, "print gini attribute importance")
	jsonOut := fs.String("json-out", "", "write the tree as JSON to this file")
	dotOut := fs.String("dot-out", "", "write the tree as Graphviz dot to this file")
	phases := fs.Bool("phases", false, "print the per-phase/per-level breakdown of the modeled runtime")
	traceOut := fs.String("trace", "", "write per-rank virtual timelines as Chrome trace-event JSON to this file")

	schemaPath := fs.String("schema", "", "JSON schema file (with -train)")
	trainPath := fs.String("train", "", "training CSV file")
	testPath := fs.String("test", "", "held-out test CSV file")

	questFn := fs.Int("quest-function", 0, "generate Quest data with this function (1..10) instead of reading CSV")
	records := fs.Int("records", 100000, "records to generate with -quest-function")
	seed := fs.Int64("seed", 1, "generator seed")
	noise := fs.Float64("noise", 0, "generator label noise")
	testFrac := fs.Float64("test-frac", 0.25, "held-out fraction for generated data")
	cvFolds := fs.Int("cv", 0, "run k-fold cross-validation instead of a single train/test split")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var algorithm classify.Algorithm
	switch *algo {
	case "scalparc":
		algorithm = classify.ScalParC
	case "sprint":
		algorithm = classify.SPRINT
	case "serial":
		algorithm = classify.Serial
	case "sliq":
		algorithm = classify.SLIQ
	default:
		return fmt.Errorf("unknown -algo %q", *algo)
	}
	split, err := classify.ParseSplitMode(*splitMode)
	if err != nil {
		return fmt.Errorf("-split: %w", err)
	}
	if *bins != 0 && split != classify.SplitBinned && split != classify.SplitVote {
		return fmt.Errorf("-bins requires -split=binned or -split=vote")
	}
	if *voteK != 0 && split != classify.SplitVote {
		return fmt.Errorf("-vote-k requires -split=vote")
	}
	if (*faultSpec != "" || *ckptDir != "" || *ckptEvery != 0) && algorithm != classify.ScalParC {
		return fmt.Errorf("-faults and -checkpoint require -algo scalparc (got %s)", *algo)
	}
	if *forest < 0 {
		return fmt.Errorf("-forest must be >= 0 (got %d)", *forest)
	}
	if *forest == 0 && (*featureSample != 0 || *forestParallel != 0 || *forestCkpt != "") {
		return fmt.Errorf("-feature-sample, -forest-parallel, and -forest-checkpoint require -forest")
	}
	if *forest > 0 {
		if algorithm != classify.ScalParC {
			return fmt.Errorf("-forest requires -algo scalparc (got %s)", *algo)
		}
		if *transport != "sim" {
			return fmt.Errorf("-forest trains its trees as independent in-process worlds and requires -transport=sim")
		}
		if *cvFolds > 0 {
			return fmt.Errorf("-forest and -cv are mutually exclusive")
		}
		if *faultSpec != "" || *ckptDir != "" || *ckptEvery != 0 {
			return fmt.Errorf("-faults and -checkpoint are single-tree options; forests checkpoint per tree via -forest-checkpoint")
		}
		if *prune {
			return fmt.Errorf("-prune is a single-tree option (bagging relies on fully grown trees)")
		}
		if *dump || *dotOut != "" || *importance || *phases || *traceOut != "" {
			return fmt.Errorf("-dump, -dot-out, -importance, -phases, and -trace render a single tree; they do not apply to -forest")
		}
	}
	if *ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 (got %d)", *ckptEvery)
	}
	detectSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "detect-timeout" {
			detectSet = true
		}
	})
	if detectSet && *detectTimeout <= 0 {
		return fmt.Errorf("-detect-timeout must be > 0 (got %v); omit it for fail-stop EOF detection", *detectTimeout)
	}
	switch *transport {
	case "sim":
		if tcptransport.IsWorker() {
			return fmt.Errorf("worker environment set but -transport is sim")
		}
		if detectSet {
			return fmt.Errorf("-detect-timeout is wall-clock heartbeat detection and requires -transport=tcp (the simulated machine observes every death directly)")
		}
		if *wireFaults != "" {
			return fmt.Errorf("-wire-faults strikes TCP frames and requires -transport=tcp")
		}
	case "tcp":
		if algorithm != classify.ScalParC && algorithm != classify.SPRINT {
			return fmt.Errorf("-transport=tcp requires a parallel algorithm (got %s)", *algo)
		}
		if *cvFolds > 0 {
			return fmt.Errorf("-cv requires -transport=sim")
		}
		if *ckptEvery != 0 && *ckptDir == "" {
			return fmt.Errorf("-transport=tcp checkpoints are per-process frame files; -checkpoint-every needs -checkpoint DIR for shared stable storage")
		}
		if *phases || *traceOut != "" {
			return fmt.Errorf("phase traces are per-process and do not cross the wire; -phases and -trace require -transport=sim")
		}
	default:
		return fmt.Errorf("unknown -transport %q (want sim or tcp)", *transport)
	}
	if *faultSpec != "" {
		// Validate the spec (including the random-spec seed requirement)
		// before any data is generated, so a bad flag fails fast.
		sched, err := faults.Parse(*faultSpec, *faultSeed, *procs)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		if sched.NeedsWire() {
			if *transport != "tcp" {
				return fmt.Errorf("-faults: hang events silence a live process and require -transport=tcp")
			}
			if *detectTimeout <= 0 {
				return fmt.Errorf("-faults: hang events never close a connection; peers need -detect-timeout to suspect the rank")
			}
		}
	}
	if *wireFaults != "" {
		ws, err := faults.ParseWire(*wireFaults, *faultSeed, *procs)
		if err != nil {
			return fmt.Errorf("-wire-faults: %w", err)
		}
		for _, e := range ws.Events() {
			if e.Kind == faults.WireHang && *detectTimeout <= 0 {
				return fmt.Errorf("-wire-faults: hang events never close a connection; peers need -detect-timeout to suspect the rank")
			}
		}
	}
	if *ckptDir != "" {
		// Probe writability up front: an unwritable checkpoint directory
		// should refuse the run, not strand it at the first save.
		if _, err := scalparc.NewCheckpointStore(*ckptDir); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}

	var train, test *classify.Table
	switch {
	case *questFn > 0:
		tab, err := classify.GenerateQuest(classify.QuestConfig{
			Function: *questFn, Records: *records, Seed: *seed, LabelNoise: *noise,
		})
		if err != nil {
			return err
		}
		train, test = tab.Split(1 - *testFrac)
		fmt.Fprintf(stdout, "generated quest F%d: %d train / %d test records\n",
			*questFn, train.NumRows(), test.NumRows())
	case *trainPath != "":
		if *schemaPath == "" {
			return fmt.Errorf("-train requires -schema")
		}
		schema, err := loadSchema(*schemaPath)
		if err != nil {
			return err
		}
		train, err = loadCSV(*trainPath, schema)
		if err != nil {
			return err
		}
		if *testPath != "" {
			test, err = loadCSV(*testPath, schema)
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "loaded %d training records from %s\n", train.NumRows(), *trainPath)
	default:
		return fmt.Errorf("provide either -quest-function or -schema/-train (see -h)")
	}

	trainCfg := classify.Config{
		Algorithm:         algorithm,
		Processors:        *procs,
		MaxDepth:          *depth,
		MinSplit:          *minSplit,
		CategoricalBinary: *binaryCats,
		Prune:             *prune,
		Split:             split,
		Bins:              *bins,
		VoteK:             *voteK,
		Faults:            *faultSpec,
		FaultSeed:         *faultSeed,
		CheckpointEvery:   *ckptEvery,
		CheckpointDir:     *ckptDir,
	}
	if split == classify.SplitBinned || split == classify.SplitVote {
		b := *bins
		if b == 0 {
			b = classify.DefaultBins
		}
		if split == classify.SplitVote {
			k := *voteK
			if k == 0 {
				k = classify.DefaultVoteK
			}
			fmt.Fprintf(stdout, "vote split finding: top-%d attribute nominations per rank, up to %d quantile bins per continuous attribute\n", k, b)
		} else {
			fmt.Fprintf(stdout, "binned split finding: up to %d quantile bins per continuous attribute\n", b)
		}
	}

	if *forest > 0 {
		return runForest(stdout, train, test, trainCfg, *forest, *forestSeed,
			*featureSample, *forestParallel, *forestCkpt, *jsonOut, *compileStats)
	}

	if *cvFolds > 0 {
		// Cross-validate over the full available data (train + test).
		full := train
		if test != nil && test.NumRows() > 0 {
			if err := full.AppendTable(test); err != nil {
				return err
			}
		}
		cv, err := classify.CrossValidate(full, trainCfg, *cvFolds)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d-fold cross-validation over %d records (%s):\n", *cvFolds, full.NumRows(), algorithm)
		for _, f := range cv.Folds {
			fmt.Fprintf(stdout, "  fold %d: accuracy %.4f (%d nodes)\n", f.Fold, f.Evaluation.Accuracy, f.TreeNodes)
		}
		fmt.Fprintf(stdout, "mean accuracy %.4f (min %.4f, max %.4f)\n", cv.MeanAccuracy, cv.MinAccuracy, cv.MaxAccuracy)
		return nil
	}

	var model *classify.Model
	switch {
	case *transport == "tcp" && tcptransport.IsWorker():
		return trainTCPWorker(train, trainCfg, *detectTimeout, *wireFaults, *faultSeed)
	case *transport == "tcp":
		fmt.Fprintf(stdout, "tcp transport: %d rank processes over localhost\n", *procs)
		model, err = trainTCPCoordinator(args, *procs, os.Stderr, *detectTimeout, *ckptDir, stdout)
	default:
		model, err = classify.Train(train, trainCfg)
	}
	if err != nil {
		return err
	}

	mm := model.Metrics
	fmt.Fprintf(stdout, "algorithm %s on %d processors: %d levels, %d nodes (%d leaves), depth %d\n",
		mm.Algorithm, mm.Processors, mm.Levels, model.Tree.NumNodes(), model.Tree.NumLeaves(), model.Tree.Depth())
	if mm.Algorithm == classify.ScalParC || mm.Algorithm == classify.SPRINT {
		var peak int64
		for _, m := range mm.PeakMemoryPerRank {
			if m > peak {
				peak = m
			}
		}
		fmt.Fprintf(stdout, "modeled runtime %.3fs (presort %.3fs), wall %.3fs\n",
			mm.ModeledSeconds, mm.PresortModeledSeconds, mm.WallSeconds)
		fmt.Fprintf(stdout, "peak memory per processor %.2f MB; total traffic %.2f MB sent\n",
			float64(peak)/1e6, float64(mm.BytesSent)/1e6)
		if mm.Recoveries > 0 {
			fmt.Fprintf(stdout, "recovered from %d failure(s): lost ranks %v, finished on %d processors\n",
				mm.Recoveries, mm.Lost, mm.FinalRanks)
		}
		if mm.Suspicions > 0 {
			fmt.Fprintf(stdout, "%d peer failure(s) detected by heartbeat timeout\n", mm.Suspicions)
		}
	}
	if *prune {
		fmt.Fprintf(stdout, "pruned %d internal nodes\n", mm.PrunedNodes)
	}
	if *compileStats {
		m, err := infer.Compile(model.Tree)
		if err != nil {
			return err
		}
		st := m.Stats()
		fmt.Fprintf(stdout, "compiled model: %d nodes (%d leaves), depth %d, %d subset words, %d bytes flat (%.1f B/node)\n",
			st.Nodes, st.Leaves, st.Depth, st.SubsetWords, st.Bytes, float64(st.Bytes)/float64(st.Nodes))
	}
	if *phases || *traceOut != "" {
		if mm.Trace == nil {
			return fmt.Errorf("algorithm %s records no phase trace", mm.Algorithm)
		}
		mm.Trace.WriteText(stdout)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := mm.Trace.WriteChrome(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote Chrome trace to %s\n", *traceOut)
		}
	}

	trainEval, err := classify.Evaluate(model.Tree, train)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "training   %s", trainEval)
	if test != nil && test.NumRows() > 0 {
		testEval, err := classify.Evaluate(model.Tree, test)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "held-out   %s", testEval)
	}

	if *importance {
		imp := model.Tree.Importance()
		fmt.Fprintln(stdout, "attribute importance (gini):")
		for _, a := range model.Tree.TopAttributes(0) {
			if imp[a] == 0 {
				continue
			}
			fmt.Fprintf(stdout, "  %-12s %.4f\n", model.Tree.Schema.Attrs[a].Name, imp[a])
		}
	}

	if *dump {
		if err := model.Tree.Dump(stdout); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := model.Tree.Encode(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote tree JSON to %s\n", *jsonOut)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := model.Tree.DOT(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote Graphviz dot to %s\n", *dotOut)
	}
	return nil
}
