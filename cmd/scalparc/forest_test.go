package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/classify"
)

func TestRunForestMode(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "forest.json")
	var out bytes.Buffer
	err := run([]string{
		"-quest-function", "1", "-records", "1500", "-procs", "2", "-seed", "7",
		"-forest", "6", "-feature-sample", "3", "-forest-parallel", "2",
		"-split", "binned", "-bins", "16", "-minsplit", "8",
		"-compile", "-json-out", jsonPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"forest of 6 trees", "6 trained, 0 restored, 0 lost",
		"compiled forest: 6 trees", "training", "held-out", "wrote forest JSON"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	fh, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	f, err := classify.DecodeModel(fh)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 6 {
		t.Fatalf("written forest has %d trees, want 6", f.NumTrees())
	}
}

func TestRunForestCheckpointRerun(t *testing.T) {
	ckpt := t.TempDir()
	args := []string{
		"-quest-function", "1", "-records", "600", "-procs", "2",
		"-forest", "3", "-split", "binned", "-bins", "16", "-minsplit", "8",
		"-forest-checkpoint", ckpt,
	}
	var out1 bytes.Buffer
	if err := run(args, &out1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out1.String(), "3 trained, 0 restored") {
		t.Fatalf("first run:\n%s", out1.String())
	}
	var out2 bytes.Buffer
	if err := run(args, &out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "0 trained, 3 restored") {
		t.Fatalf("rerun did not restore from the checkpoint dir:\n%s", out2.String())
	}
}

func TestRunForestFlagValidation(t *testing.T) {
	base := []string{"-quest-function", "1", "-records", "200"}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"negative", []string{"-forest", "-1"}},
		{"orphan-sample", []string{"-feature-sample", "3"}},
		{"algo", []string{"-forest", "2", "-algo", "serial"}},
		{"tcp", []string{"-forest", "2", "-transport", "tcp"}},
		{"cv", []string{"-forest", "2", "-cv", "3"}},
		{"faults", []string{"-forest", "2", "-faults", "crash@FindSplitI:1:2"}},
		{"prune", []string{"-forest", "2", "-prune"}},
		{"dump", []string{"-forest", "2", "-dump"}},
	} {
		var out bytes.Buffer
		if err := run(append(append([]string{}, base...), tc.args...), &out); err == nil {
			t.Errorf("%s: flag misuse not rejected", tc.name)
		}
	}
}
