package main

// Chaos tests for the TCP backend: inject network-shaped faults (hung
// NICs, torn connections, delays) into real worker processes and assert
// the run still terminates within a detection-bounded window with the
// byte-identical tree of a fault-free run. TestTCPChaosHangFindSplitI is
// the always-on CI gate; the full kind x site x procs sweep runs under
// CHAOS_TCP=1 (make chaos-tcp).

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// dumpChaosTCP preserves a failing chaos run's coordinator output and
// tree files in $CHAOS_ARTIFACT_DIR (set by `make chaos-tcp` in CI), so
// the evidence survives as a build artifact. Registered as a cleanup; a
// passing test writes nothing.
func dumpChaosTCP(t *testing.T, label string, out *bytes.Buffer, files ...string) {
	t.Cleanup(func() {
		dir := os.Getenv("CHAOS_ARTIFACT_DIR")
		if dir == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("chaos artifact dir: %v", err)
			return
		}
		if err := os.WriteFile(filepath.Join(dir, label+".out.txt"), out.Bytes(), 0o644); err != nil {
			t.Logf("chaos artifact: %v", err)
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				continue // a missing tree file is itself the failure
			}
			dst := filepath.Join(dir, label+"-"+filepath.Base(f))
			if err := os.WriteFile(dst, data, 0o644); err != nil {
				t.Logf("chaos artifact: %v", err)
			}
		}
		t.Logf("wrote chaos artifacts for %s to %s", label, dir)
	})
}

// chaosOracle trains the fault-free tree on the simulated backend and
// returns its -json-out bytes plus the wall time of the clean run, the
// baseline for the bounded-completion assertions.
func chaosOracle(t *testing.T, base []string, dir string) ([]byte, time.Duration) {
	t.Helper()
	path := filepath.Join(dir, "clean.json")
	args := append(append([]string(nil), base...), "-json-out", path)
	start := time.Now()
	if err := run(args, io.Discard); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	elapsed := time.Since(start)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, elapsed
}

// TestTCPChaosHangFindSplitI is the headline chaos scenario from the
// detection design: one worker process hangs (NIC silenced, process
// alive) in the middle of FindSplitI. Without heartbeats the run would
// block forever on the collective; with -detect-timeout the survivors
// must suspect the rank within the timeout, shrink, restore the last
// checkpoint, and finish with the oracle's exact tree — all inside a
// detection-bounded wall-clock window.
func TestTCPChaosHangFindSplitI(t *testing.T) {
	const detect = 500 * time.Millisecond
	dir := t.TempDir()
	base := []string{"-quest-function", "2", "-records", "2000", "-seed", "7", "-procs", "3"}
	clean, cleanWall := chaosOracle(t, base, dir)

	hungPath := filepath.Join(dir, "hung.json")
	args := append(append([]string(nil), base...),
		"-transport", "tcp", "-detect-timeout", detect.String(),
		"-checkpoint", filepath.Join(dir, "ck"),
		"-faults", "hang@FindSplitI:2:1", "-json-out", hungPath)
	var out bytes.Buffer
	dumpChaosTCP(t, "hang-findsplit-gate", &out, hungPath)
	start := time.Now()
	if err := run(args, &out); err != nil {
		t.Fatalf("hung run: %v\n%s", err, out.String())
	}
	elapsed := time.Since(start)

	// The acceptance bound is 2*detect + normal runtime; the wall-clock
	// budget below is that bound with generous scheduling slack (worker
	// processes re-exec, compile nothing, but do re-read flags and respawn
	// under CI load). What it must never be is unbounded: pre-detection
	// this test would hang until the go test timeout.
	if budget := 10*cleanWall + 2*detect + 15*time.Second; elapsed > budget {
		t.Fatalf("hung run took %v, budget %v (clean %v, detect %v)", elapsed, budget, cleanWall, detect)
	}
	s := out.String()
	for _, want := range []string{
		"recovered from 1 failure(s)",
		"finished on 2 processors",
		"peer failure(s) detected by heartbeat timeout",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	hung, err := os.ReadFile(hungPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, hung) {
		t.Fatal("recovered tree differs from the fault-free oracle")
	}
}

// TestTCPOrphanRespawnFromCheckpoint exercises the coordinator's
// supervisor loop: at p=2 a hung rank leaves its peer with no quorum —
// the survivor aborts as orphaned rather than continuing alone on stale
// membership — so the attempt dies wholesale and the coordinator must
// respawn the surviving world size from the last on-disk checkpoint.
func TestTCPOrphanRespawnFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-quest-function", "1", "-records", "1200", "-seed", "3", "-procs", "2"}
	clean, _ := chaosOracle(t, base, dir)

	outPath := filepath.Join(dir, "respawn.json")
	args := append(append([]string(nil), base...),
		"-transport", "tcp", "-detect-timeout", "400ms",
		"-checkpoint", filepath.Join(dir, "ck"),
		"-faults", "hang@FindSplitI:1:1", "-json-out", outPath)
	var out bytes.Buffer
	dumpChaosTCP(t, "orphan-respawn", &out, outPath)
	if err := run(args, &out); err != nil {
		t.Fatalf("respawn run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "respawning 1 survivor(s) from checkpoint") {
		t.Fatalf("coordinator did not report a respawn:\n%s", s)
	}
	if !strings.Contains(s, "finished on 1 processors") {
		t.Fatalf("respawned run did not finish solo:\n%s", s)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, got) {
		t.Fatal("respawned tree differs from the fault-free oracle")
	}
}

// TestTCPChaosSweep is the full chaos matrix (make chaos-tcp): every
// wire fault kind at phase-boundary sites, p in {2,4}, each run required
// to terminate and produce the oracle's byte-identical tree. Gated on
// CHAOS_TCP=1 because it launches dozens of worker processes.
func TestTCPChaosSweep(t *testing.T) {
	if os.Getenv("CHAOS_TCP") == "" {
		t.Skip("set CHAOS_TCP=1 (or run make chaos-tcp) for the full sweep")
	}
	const detect = "400ms"
	cases := []struct {
		name string
		flag string // -faults or -wire-faults
		spec string // %d fills the struck rank
	}{
		// Phase-level hangs at both induction phase boundaries.
		{"hang-findsplit", "-faults", "hang@FindSplitI:1:%d"},
		{"hang-performsplit", "-faults", "hang@PerformSplitII:1:%d"},
		// Frame-level faults: torn and delayed connections.
		{"reset", "-wire-faults", "reset@%d:0#2"},
		{"truncate", "-wire-faults", "truncate@%d:0#3"},
		{"delay-benign", "-wire-faults", "delay@%d:0:50ms#2"},
	}
	for _, procs := range []int{2, 4} {
		dir := t.TempDir()
		base := []string{"-quest-function", "2", "-records", "1500", "-seed", "5",
			"-procs", fmt.Sprint(procs)}
		clean, _ := chaosOracle(t, base, dir)
		for _, tc := range cases {
			t.Run(fmt.Sprintf("p%d-%s", procs, tc.name), func(t *testing.T) {
				victim := procs - 1
				outPath := filepath.Join(dir, tc.name+".json")
				args := append(append([]string(nil), base...),
					"-transport", "tcp", "-detect-timeout", detect,
					"-checkpoint", filepath.Join(dir, "ck-"+tc.name),
					tc.flag, fmt.Sprintf(tc.spec, victim), "-json-out", outPath)
				var out bytes.Buffer
				dumpChaosTCP(t, fmt.Sprintf("p%d-%s", procs, tc.name), &out, outPath)
				if err := run(args, &out); err != nil {
					t.Fatalf("chaos run: %v\n%s", err, out.String())
				}
				got, err := os.ReadFile(outPath)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(clean, got) {
					t.Fatalf("tree differs from the fault-free oracle\n%s", out.String())
				}
				if tc.name == "delay-benign" && strings.Contains(out.String(), "recovered from") {
					t.Fatalf("a sub-timeout delay triggered a recovery:\n%s", out.String())
				}
			})
		}
	}
}
