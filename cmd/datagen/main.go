// Command datagen generates synthetic Quest training sets (the paper's
// workload) as CSV.
//
// Usage:
//
//	datagen -function 2 -records 100000 -seed 1 -o train.csv
//	datagen -function 7 -records 50000 -nine -noise 0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/classify"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	function := fs.Int("function", 2, "Quest classification function (1..10)")
	records := fs.Int("records", 10000, "number of records")
	seed := fs.Int64("seed", 1, "random seed")
	nine := fs.Bool("nine", false, "emit the full nine-attribute schema (default: the paper's seven)")
	noise := fs.Float64("noise", 0, "label noise probability")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tab, err := classify.GenerateQuest(classify.QuestConfig{
		Function:       *function,
		Records:        *records,
		Seed:           *seed,
		NineAttributes: *nine,
		LabelNoise:     *noise,
	})
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := classify.WriteCSV(w, tab); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", tab.NumRows(), *out)
	}
	return nil
}
