package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/classify"
)

func TestRunToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-function", "1", "-records", "25", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 26 { // header + 25 rows
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "salary,") || !strings.HasSuffix(lines[0], ",class") {
		t.Fatalf("header: %s", lines[0])
	}
}

func TestRunToFileAndReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	var out bytes.Buffer
	if err := run([]string{"-function", "2", "-records", "40", "-o", path, "-nine"}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tab, err := classify.ReadCSV(f, classify.QuestSchema(true))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 40 || tab.Schema.NumAttrs() != 9 {
		t.Fatalf("read back %d rows, %d attrs", tab.NumRows(), tab.Schema.NumAttrs())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-function", "0"}, &out); err == nil {
		t.Fatal("invalid function accepted")
	}
	if err := run([]string{"-records", "-5"}, &out); err == nil {
		t.Fatal("negative records accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
