package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMicroAndBlocks(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "micro,blocks", "-scale", "0.002"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"MICRO", "ABL-BLOCK", "rounds"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FIG3a") {
		t.Fatal("unrequested experiment ran")
	}
}

func TestRunSerialWall(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "serialwall", "-scale", "0.002"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MOT-SERIAL") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunSweepTiny(t *testing.T) {
	var out bytes.Buffer
	// A very small scale keeps the sweep fast while exercising the whole
	// fig3a/fig3b/speedups/memfactors path.
	if err := run([]string{"-exp", "fig3a,memfactors", "-scale", "0.001", "-depth", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"sweep:", "FIG3a", "TXT-MEM"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if strings.Contains(s, "TXT-SPD") {
		t.Fatal("unrequested experiment ran")
	}
}

func TestRunAblationsAndDiagnostics(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "pernode,batched,rebalance,weak,levels", "-scale", "0.002"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"ABL-NODE", "ABL-BATCH", "ABL-REBAL", "EXP-WEAK", "EXP-LEVELS"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nonsense"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "0"}, &out); err == nil {
		t.Fatal("zero scale accepted")
	}
	if err := run([]string{"-scale", "2"}, &out); err == nil {
		t.Fatal("scale > 1 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunPhaseExperiments(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	err := run([]string{"-exp", "phases,phasecmp", "-scale", "0.002", "-trace", tracePath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"EXP-PHASES", "phase breakdown", "CMP-PHASES", "sliq (serial)", "wrote Chrome trace"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
}

func TestRunFaultExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fault", "-scale", "0.004"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"EXP-FAULT", "replay recovery", "ckpt recovery", "identical"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "DIFFERS") {
		t.Fatalf("recovered tree differs from fault-free tree:\n%s", s)
	}
}
