// Command benchrunner regenerates the paper's evaluation: every figure,
// the prose's quantitative claims, and the design ablations listed in
// DESIGN.md's per-experiment index.
//
//	benchrunner -exp all                 # everything at the default scale
//	benchrunner -exp fig3a -scale 1.0    # Figure 3(a) at the paper's full sizes
//	benchrunner -exp sprintcmp           # ScalParC vs parallel SPRINT
//
// Record counts are the paper's {0.2 .. 6.4} million multiplied by -scale
// (default 1/16; the curve shapes depend on N/p and survive scaling —
// see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/comm/tcptransport"
)

func main() {
	// EXP-TCP re-executes this binary once per rank; a worker invocation
	// runs its rank's share of the training and exits.
	if tcptransport.IsWorker() {
		if err := bench.TCPWorker(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner worker:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: fig3a, fig3b, speedups, memfactors, sprintcmp, phases, phasecmp, blocks, binned, binnedguard, vote, voteguard, fault, hotpath, hotpathguard, predict, predictguard, tcp, serve, serveguard, forest, forestguard, micro, or all")
	scale := fs.Float64("scale", 1.0/16, "fraction of the paper's record counts to run")
	function := fs.Int("function", 2, "Quest classification function")
	seed := fs.Int64("seed", 1, "generator seed")
	maxDepth := fs.Int("depth", 0, "maximum tree depth (0 = unlimited)")
	traceOut := fs.String("trace", "", "write the phases experiment's per-rank timelines as Chrome trace-event JSON to this file")
	benchDir := fs.String("benchdir", ".", "directory holding the BENCH_*.json trajectory files (hotpath, hotpathguard)")
	benchLabel := fs.String("benchlabel", "", "run label -exp hotpath records in the BENCH_*.json files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale %v out of (0, 1]", *scale)
	}

	// Latencies scale with the data so reduced sweeps keep the full-size
	// comp/comm balance (see bench.ScaledMachine).
	machine := bench.ScaledMachine(*scale)
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	// The Figure 3 sweep feeds four experiments; run it once.
	if all || want["fig3a"] || want["fig3b"] || want["speedups"] || want["memfactors"] {
		cfg := bench.DefaultSweep(*scale)
		cfg.Function = *function
		cfg.Seed = *seed
		cfg.MaxDepth = *maxDepth
		fmt.Fprintf(out, "sweep: sizes %v, procs %v (scale %.4g of the paper's sizes)\n\n",
			cfg.Sizes, cfg.Procs, *scale)
		points, err := cfg.Run()
		if err != nil {
			return err
		}
		g := bench.NewGrid(points)
		if all || want["fig3a"] {
			bench.Fig3a(out, g)
			fmt.Fprintln(out)
			ran++
		}
		if all || want["fig3b"] {
			bench.Fig3b(out, g)
			fmt.Fprintln(out)
			ran++
		}
		if all || want["speedups"] {
			bench.Speedups(out, g)
			fmt.Fprintln(out)
			ran++
		}
		if all || want["memfactors"] {
			bench.MemFactors(out, g)
			fmt.Fprintln(out)
			ran++
		}
	}

	if all || want["sprintcmp"] {
		n := int(float64(bench.PaperSizes[2]) * *scale) // the 0.8m series
		if err := bench.SprintCmp(out, n, []int{2, 4, 8, 16, 32}, *function, *seed, *maxDepth, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["serialwall"] {
		n := int(float64(bench.PaperSizes[2]) * *scale)
		budget := int64(n) // records * 1 byte: forces ~5 stages at the root
		budgets := []int64{1 << 30, int64(n) * 5, budget * 2, budget}
		if err := bench.SerialMemoryWall(out, n, budgets, *function, *seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["pernode"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		if err := bench.PerNode(out, n, []int{4, 16, 64}, *function, *seed, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["batched"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		if err := bench.Batched(out, n, []int{4, 16, 64}, *function, *seed, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["rebalance"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		if err := bench.Rebalance(out, n, []int{4, 16, 64}, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["blocks"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		bench.Blocks(out, n, []int{2, 4, 8, 16}, machine)
		fmt.Fprintln(out)
		ran++
	}

	if all || want["weak"] {
		base := int(float64(bench.PaperSizes[0]) * *scale / 4)
		if err := bench.WeakScaling(out, base, []int{2, 4, 8, 16, 32, 64}, *function, *seed, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["phases"] {
		n := int(float64(bench.PaperSizes[2]) * *scale)
		if err := bench.Phases(out, n, 16, *function, *seed, *maxDepth, machine, *traceOut); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["phasecmp"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		if err := bench.PhaseCmp(out, n, 8, *function, *seed, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["levels"] {
		n := int(float64(bench.PaperSizes[2]) * *scale)
		if err := bench.Levels(out, n, 16, *function, *seed, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["binned"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		if err := bench.BinnedSweep(out, n, 8, *function, *seed, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["binnedguard"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		if err := bench.BinnedGuard(out, n, 8, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	// vote appends to the checked-in BENCH_vote.json trajectory, so it only
	// runs when asked for by name, never under -exp all.
	if want["vote"] {
		if err := bench.Vote(out, *benchDir, *benchLabel); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["voteguard"] {
		if err := bench.VoteGuard(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	// hotpath and predict append to the checked-in BENCH_*.json trajectory
	// files, so they only run when asked for by name, never under -exp all.
	if want["hotpath"] {
		if err := bench.Hotpath(out, *benchDir, *benchLabel); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["hotpathguard"] {
		if err := bench.HotpathGuard(out, *benchDir); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	// tcp spawns real worker processes and appends to BENCH_tcp.json, so
	// like hotpath it only runs when asked for by name.
	if want["tcp"] {
		if err := bench.TCP(out, *benchDir, *benchLabel); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if want["predict"] {
		if err := bench.Predict(out, *benchDir, *benchLabel); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["predictguard"] {
		if err := bench.PredictGuard(out, *benchDir); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	// serve measures real wall-clock HTTP serving and appends to
	// BENCH_serve.json, so like hotpath it only runs when asked by name.
	if want["serve"] {
		if err := bench.Serve(out, *benchDir, *benchLabel); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["serveguard"] {
		if err := bench.ServeGuard(out, *benchDir); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	// forest appends to the checked-in BENCH_forest.json trajectory, so
	// like hotpath it only runs when asked for by name.
	if want["forest"] {
		if err := bench.Forest(out, *benchDir, *benchLabel); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["forestguard"] {
		if err := bench.ForestGuard(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["fault"] {
		n := int(float64(bench.PaperSizes[0]) * *scale)
		if err := bench.Faults(out, n, []int{4, 8, 16}, *function, *seed, machine); err != nil {
			return err
		}
		fmt.Fprintln(out)
		ran++
	}

	if all || want["micro"] {
		bench.Micro(out, machine)
		fmt.Fprintln(out)
		ran++
	}

	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
