// Command serve runs the production inference server: an HTTP prediction
// service over compiled decision trees, with per-model-version
// micro-batching and hot-swappable models behind a sharded cache.
//
// Models load at startup from serialized tree JSON (the scalparc command's
// -json-out format) and can be replaced at runtime over HTTP:
//
//	serve -addr :8080 -model quest=tree.json -model spam=spam.json
//	curl -d '{"row": [50000,10000,30,"e2",200000,10,5000]}' localhost:8080/predict/quest
//	curl -X POST --data-binary @new-tree.json localhost:8080/models/quest
//	curl -X POST -H 'Content-Type: text/csv' --data-binary @train.csv localhost:8080/models/quest
//	curl localhost:8080/stats
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes, in-
// flight requests finish, and every model version's batcher drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/tree"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// modelFlags collects repeated -model name=path pairs.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string { return fmt.Sprintf("%d models", len(*m)) }

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

// run starts the server and blocks until ctx cancels (the signal handler in
// main) or the listener fails. ready, when non-nil, receives the bound
// address once the server is accepting — tests use it to find the port.
func run(ctx context.Context, args []string, stdout io.Writer, ready func(addr string)) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	var models modelFlags
	fs.Var(&models, "model", "load a model at startup: name=tree.json (repeatable)")
	batch := fs.Int("batch", 0, "micro-batch row cap (0 = default 512)")
	deadline := fs.Duration("deadline", 0, "micro-batch flush deadline (0 = default 1ms)")
	workers := fs.Int("workers", 0, "flusher workers per model version (0 = default)")
	shards := fs.Int("shards", 0, "model cache shards (0 = default)")
	maxBody := fs.Int64("max-body", 0, "request body byte cap (0 = default 8 MiB)")
	maxRows := fs.Int("max-rows", 0, "rows per prediction request (0 = default 4096)")
	drainWait := fs.Duration("drain", 10*time.Second, "graceful shutdown grace period")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	s := serve.New(serve.Config{
		MaxBatch:          *batch,
		BatchWait:         *deadline,
		Workers:           *workers,
		Shards:            *shards,
		MaxBodyBytes:      *maxBody,
		MaxRowsPerRequest: *maxRows,
	})
	defer s.Close()
	for _, m := range models {
		t, err := loadTree(m.path)
		if err != nil {
			return fmt.Errorf("-model %s: %w", m.name, err)
		}
		v, err := s.SetModel(m.name, t)
		if err != nil {
			return fmt.Errorf("-model %s: %w", m.name, err)
		}
		fmt.Fprintf(stdout, "loaded model %q v%d from %s (%d nodes, %d classes)\n",
			m.name, v, m.path, t.NumNodes(), t.Schema.NumClasses())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(stdout, "serving on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func loadTree(path string) (*tree.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tree.Decode(f)
}
