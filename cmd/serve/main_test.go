package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/serial"
	"repro/internal/splitter"
)

// writeTreeFile trains a small tree and serializes it for -model loading.
func writeTreeFile(t *testing.T, dir, name string, seed int64) string {
	t.Helper()
	tab, err := datagen.Generate(datagen.Config{Function: 2, Attrs: datagen.Seven, Seed: seed}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := serial.Train(tab, splitter.Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeEndToEnd boots the command on a free port with two preloaded
// models, predicts over HTTP, and shuts down gracefully via context cancel
// (the signal path in main uses the same cancellation).
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	p1 := writeTreeFile(t, dir, "a.json", 1)
	p2 := writeTreeFile(t, dir, "b.json", 2)

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-model", "alpha=" + p1, "-model", "beta=" + p2, "-deadline", "1ms"},
			&out, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	body := []byte(`{"row": [50000,10000,30,"e2",200000,10,5000]}`)
	for _, model := range []string{"alpha", "beta"} {
		resp, err := http.Post("http://"+addr+"/predict/"+model, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var pr struct {
			Model   string   `json:"model"`
			Indices []int    `json:"indices"`
			Classes []string `json:"classes"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || pr.Model != model || len(pr.Indices) != 1 || len(pr.Classes) != 1 {
			t.Fatalf("predict %s: status %d resp %+v", model, resp.StatusCode, pr)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("graceful shutdown hung")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown log in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `loaded model "alpha" v1`) {
		t.Fatalf("missing model load log:\n%s", out.String())
	}
}

// TestBadFlags exercises startup failure paths.
func TestBadFlags(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-model", "nopath"},
		{"-model", "x=/does/not/exist.json"},
		{"stray"},
		{"-addr", "definitely:not:an:addr"},
	} {
		if err := run(ctx, args, &out, nil); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
