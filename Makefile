# Standard development entry points. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test bench race fuzz guard cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per experiment in DESIGN.md's index (repo
# root), plus the per-package micro-benchmarks (e.g. internal/comm).
bench:
	$(GO) test -bench=. -benchmem ./...

# Race-detect the packages with real goroutine concurrency: the simulated
# machine (one goroutine per rank) and the engine driving it.
race:
	$(GO) test -race ./internal/comm ./internal/scalparc

# Short fuzzing pass over the CSV reader (CI runs the same smoke).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) -run='^$$' ./internal/dataset

# Benchmark-regression guard for the binned reduce-scatter FindSplitI
# (GUARD-BINNED in EXPERIMENTS.md); exits non-zero on regression.
guard:
	$(GO) run ./cmd/benchrunner -exp binnedguard

cover:
	$(GO) test -cover ./...

# Regenerate the paper's evaluation at the default 1/16 scale
# (see EXPERIMENTS.md; use SCALE=1.0 for the full-size sweep).
SCALE ?= 0.0625
experiments:
	$(GO) run ./cmd/benchrunner -exp all -scale $(SCALE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/census
	$(GO) run ./examples/fraud
	$(GO) run ./examples/scaling
	$(GO) run ./examples/outofcore

clean:
	$(GO) clean ./...
