# Standard development entry points. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test bench race fuzz guard chaos chaos-tcp tcp serve-test forest cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per experiment in DESIGN.md's index (repo
# root), plus the per-package micro-benchmarks (e.g. internal/comm),
# then regenerate the BENCH_*.json perf trajectories (EXP-HOTPATH and
# EXP-PREDICT): each `benchrunner -exp <name>` appends one labeled run.
BENCHLABEL ?=
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchrunner -exp hotpath -benchlabel "$(BENCHLABEL)"
	$(GO) run ./cmd/benchrunner -exp predict -benchlabel "$(BENCHLABEL)"

# Race-detect the packages with real goroutine concurrency: the simulated
# machine (one goroutine per rank), the engine driving it, and the
# inference server (micro-batcher + sharded model cache).
race:
	$(GO) test -race ./internal/comm ./internal/scalparc \
		./internal/serve/... ./cmd/serve

# The inference server's full suite: soak/race tests (N clients x M
# models, bit-equal to the walker oracle), hot-swap drain differential,
# the testing/quick batcher property test, and a FuzzServeRequest smoke.
serve-test:
	$(GO) test -race -count=1 ./internal/serve/... ./cmd/serve
	$(GO) test -fuzz=FuzzServeRequest -fuzztime=$(FUZZTIME) -run='^$$' ./internal/serve

# Chaos suite under the race detector: crash-at-every-(phase,level)
# recovery sweeps, checkpoint round-trips, fault-injector and detection
# tests, and the CLI's end-to-end fault paths. Failing scalparc sweeps dump
# Chrome traces into CHAOS_ARTIFACT_DIR (CI uploads them as artifacts).
CHAOS_ARTIFACT_DIR ?= chaos-traces
chaos:
	CHAOS_ARTIFACT_DIR="$(CHAOS_ARTIFACT_DIR)" $(GO) test -race \
		-run 'Fault|Crash|Checkpoint|Straggler|Corrupt|Recover|Schedule|Detection|Shrink|Truncat' \
		./internal/faults ./internal/comm ./internal/scalparc \
		./internal/nodetable ./internal/extmem ./classify ./cmd/scalparc
	$(GO) test -count=1 -run 'Crash|Shrink|Suspicion|Hung|Wire|Orphan' ./internal/comm/tcptransport
	$(MAKE) chaos-tcp

# Network chaos over real worker processes: the full wire-fault sweep
# (hang/delay/reset/truncate at phase boundaries, p in {2,4}), each run
# required to terminate within the detection bound and produce the
# byte-identical tree of a fault-free run, plus the coordinator's
# respawn-from-checkpoint path. No -race: these launch OS processes.
chaos-tcp:
	CHAOS_TCP=1 CHAOS_ARTIFACT_DIR="$(CHAOS_ARTIFACT_DIR)" $(GO) test -count=1 \
		-timeout 10m -run 'TestTCPChaos|TestTCPOrphanRespawn' ./cmd/scalparc

# The TCP transport backend: unit tests, the sim-vs-tcp differential
# (byte-identical trees and modeled runtimes at p in {2,4}), and the
# real-process crash-recovery sweep. These spawn worker OS processes, so
# they run without -race (the race detector covers the simulated side).
tcp:
	$(GO) test -count=1 ./internal/comm/tcptransport
	$(GO) test -count=1 -run 'TestTCP' ./cmd/scalparc

# Short fuzzing passes over the CSV reader, the gini scan kernel, the
# compiled-vs-walker prediction differential, and the TCP frame decoder
# (CI runs the same smokes).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) -run='^$$' ./internal/dataset
	$(GO) test -fuzz=FuzzSplitScan -fuzztime=$(FUZZTIME) -run='^$$' ./internal/gini
	$(GO) test -fuzz=FuzzPredict -fuzztime=$(FUZZTIME) -run='^$$' ./internal/infer
	$(GO) test -fuzz=FuzzCompileForest -fuzztime=$(FUZZTIME) -run='^$$' ./internal/infer
	$(GO) test -fuzz=FuzzServeRequest -fuzztime=$(FUZZTIME) -run='^$$' ./internal/serve
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=$(FUZZTIME) -run='^$$' ./internal/comm/tcptransport

# Benchmark-regression guards, all CI steps; exit non-zero on regression:
# GUARD-BINNED (binned reduce-scatter FindSplitI invariants), GUARD-VOTE
# (top-k voting on the wide schema: degeneracy, p-invariant trees, >= 2x
# FindSplitI byte cut vs binned, accuracy within 1% of exact; failing runs
# dump a Chrome trace into VOTE_ARTIFACT_DIR for CI to upload),
# GUARD-HOTPATH (gini kernel ratio + allocation discipline vs the
# checked-in BENCH_*.json trajectory), GUARD-PREDICT (compiled batch
# inference >= 4x the frozen pre-engine walk with bit-identical labels),
# GUARD-SERVE (the HTTP serving path: bit-identical labels over the
# wire, throughput/latency vs BENCH_serve.json; failing runs dump latency
# histograms into SERVE_ARTIFACT_DIR for CI to upload), and GUARD-FOREST
# (T=16 bagging beats a single fully-grown tree on noisy Quest, the
# compiled batch-vote kernel is bit-identical to the walker oracle, and a
# chaos run that kills one tree's world loses exactly that tree) — see
# EXPERIMENTS.md.
SERVE_ARTIFACT_DIR ?= serve-latency
VOTE_ARTIFACT_DIR ?= vote-trace
guard:
	$(GO) run ./cmd/benchrunner -exp binnedguard
	VOTE_ARTIFACT_DIR="$(VOTE_ARTIFACT_DIR)" $(GO) run ./cmd/benchrunner -exp voteguard
	$(GO) run ./cmd/benchrunner -exp hotpathguard
	$(GO) run ./cmd/benchrunner -exp predictguard
	SERVE_ARTIFACT_DIR="$(SERVE_ARTIFACT_DIR)" $(GO) run ./cmd/benchrunner -exp serveguard
	$(GO) run ./cmd/benchrunner -exp forestguard

# Forest suite: the scalparc forest chaos/determinism tests, the compiled
# batch-vote differentials (including the CompileForest fuzz corpus run as
# unit cases), the CLI -forest end-to-end tests, and a fresh EXP-FOREST
# trajectory run (appends a labeled point to BENCH_forest.json).
forest:
	$(GO) test -run 'Forest' ./internal/scalparc ./internal/infer ./classify ./cmd/scalparc ./internal/serve
	$(GO) run ./cmd/benchrunner -exp forest -benchlabel "$(BENCHLABEL)"

cover:
	$(GO) test -cover ./...

# Regenerate the paper's evaluation at the default 1/16 scale
# (see EXPERIMENTS.md; use SCALE=1.0 for the full-size sweep).
SCALE ?= 0.0625
experiments:
	$(GO) run ./cmd/benchrunner -exp all -scale $(SCALE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/census
	$(GO) run ./examples/fraud
	$(GO) run ./examples/scaling
	$(GO) run ./examples/outofcore

clean:
	$(GO) clean ./...
