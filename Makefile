# Standard development entry points. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build vet test bench race fuzz guard chaos cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per experiment in DESIGN.md's index (repo
# root), plus the per-package micro-benchmarks (e.g. internal/comm),
# then regenerate the BENCH_*.json perf trajectory (EXP-HOTPATH):
# `benchrunner -exp hotpath` appends one labeled run per invocation.
BENCHLABEL ?=
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchrunner -exp hotpath -benchlabel "$(BENCHLABEL)"

# Race-detect the packages with real goroutine concurrency: the simulated
# machine (one goroutine per rank) and the engine driving it.
race:
	$(GO) test -race ./internal/comm ./internal/scalparc

# Chaos suite under the race detector: crash-at-every-(phase,level)
# recovery sweeps, checkpoint round-trips, fault-injector and detection
# tests, and the CLI's end-to-end fault paths. Failing scalparc sweeps dump
# Chrome traces into CHAOS_ARTIFACT_DIR (CI uploads them as artifacts).
CHAOS_ARTIFACT_DIR ?= chaos-traces
chaos:
	CHAOS_ARTIFACT_DIR="$(CHAOS_ARTIFACT_DIR)" $(GO) test -race \
		-run 'Fault|Crash|Checkpoint|Straggler|Corrupt|Recover|Schedule|Detection|Shrink|Truncat' \
		./internal/faults ./internal/comm ./internal/scalparc \
		./internal/nodetable ./internal/extmem ./classify ./cmd/scalparc

# Short fuzzing passes over the CSV reader and the gini scan kernel (CI
# runs the same smokes).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) -run='^$$' ./internal/dataset
	$(GO) test -fuzz=FuzzSplitScan -fuzztime=$(FUZZTIME) -run='^$$' ./internal/gini

# Benchmark-regression guards, both CI steps; exit non-zero on regression:
# GUARD-BINNED (binned reduce-scatter FindSplitI invariants) and
# GUARD-HOTPATH (gini kernel ratio + allocation discipline vs the
# checked-in BENCH_*.json trajectory) — see EXPERIMENTS.md.
guard:
	$(GO) run ./cmd/benchrunner -exp binnedguard
	$(GO) run ./cmd/benchrunner -exp hotpathguard

cover:
	$(GO) test -cover ./...

# Regenerate the paper's evaluation at the default 1/16 scale
# (see EXPERIMENTS.md; use SCALE=1.0 for the full-size sweep).
SCALE ?= 0.0625
experiments:
	$(GO) run ./cmd/benchrunner -exp all -scale $(SCALE)

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/census
	$(GO) run ./examples/fraud
	$(GO) run ./examples/scaling
	$(GO) run ./examples/outofcore

clean:
	$(GO) clean ./...
