package classify

// Forest training and evaluation: the public face of the bagged-ensemble
// layer (internal/scalparc's TrainForest plus internal/infer's compiled
// batch-vote engine). A forest is T independent ScalParC runs over
// deterministic bootstrap resamples with per-node feature subsampling;
// same seed, same forest, at any processor count or pool width.

import (
	"fmt"
	"io"

	"repro/internal/infer"
	"repro/internal/scalparc"
	"repro/internal/tree"
)

// Forest is a trained bagged ensemble. See Tree for the single-tree type.
type Forest = tree.Forest

// ForestConfig controls forest training.
type ForestConfig struct {
	// Trees is the ensemble size T (required, >= 1).
	Trees int
	// Seed drives the per-tree bootstrap and feature-subsampling streams;
	// the whole forest is a pure function of (data, config, Seed).
	Seed uint64
	// FeatureSample is the per-node attribute subset size (0 disables
	// subsampling, leaving pure bagging).
	FeatureSample int
	// Parallel bounds how many trees train concurrently (0 = 1). It
	// affects wall time only, never the induced forest.
	Parallel int
	// CheckpointDir, when set, persists each completed tree atomically and
	// lets a rerun restore completed trees instead of retraining them.
	CheckpointDir string
	// Engine configures each tree's ScalParC run (processors, machine,
	// split strategy, depth limits). Algorithm must be ScalParC (the zero
	// value); fault injection, checkpointing, pruning, and Resume are not
	// forest options and must be unset.
	Engine Config
}

// ForestMetrics reports how a forest training run behaved.
type ForestMetrics struct {
	// Trees echoes the requested ensemble size; Trained, Restored, and
	// len(Lost) partition it.
	Trees, Trained, Restored int
	// Lost lists indices of trees whose runs failed terminally. A lost
	// tree never fails the run as long as one tree survives.
	Lost []int
	// ModeledSeconds sums the trained trees' modeled parallel runtimes
	// (a sequential schedule; divide by the across-tree parallelism for an
	// idealized concurrent one). WallSeconds is host wall-clock time.
	ModeledSeconds float64
	WallSeconds    float64
	// BytesSent and BytesRecv total the simulated communication volume
	// over all trained trees.
	BytesSent, BytesRecv int64
	// Recoveries sums within-tree crash-recovery rounds; VoteFallbacks
	// sums the vote-mode full-histogram fallbacks across trees.
	Recoveries    int
	VoteFallbacks int
}

// ForestModel is a trained forest with its training metrics.
type ForestModel struct {
	Forest  *Forest
	Metrics ForestMetrics
}

// TrainForest builds a bagged ensemble of cfg.Trees ScalParC trees.
func TrainForest(tab *Table, cfg ForestConfig) (*ForestModel, error) {
	if tab == nil {
		return nil, fmt.Errorf("classify: nil table")
	}
	e := cfg.Engine
	if e.Algorithm != ScalParC {
		return nil, fmt.Errorf("classify: forests train with the ScalParC algorithm (got %v)", e.Algorithm)
	}
	if e.Faults != "" || e.FaultSeed != 0 {
		return nil, fmt.Errorf("classify: fault injection is not a forest option")
	}
	if e.CheckpointEvery != 0 || e.CheckpointDir != "" || e.Resume {
		return nil, fmt.Errorf("classify: per-tree checkpointing is owned by the forest layer; set ForestConfig.CheckpointDir")
	}
	if e.Prune {
		return nil, fmt.Errorf("classify: pruning is not a forest option (bagging relies on fully grown trees)")
	}
	if e.Processors < 0 {
		return nil, fmt.Errorf("classify: negative processor count %d", e.Processors)
	}

	res, err := scalparc.TrainForest(tab, e.splitterConfig(), scalparc.ForestOptions{
		Trees:         cfg.Trees,
		Seed:          cfg.Seed,
		FeatureSample: cfg.FeatureSample,
		Procs:         e.Processors,
		Model:         e.machine(),
		Parallel:      cfg.Parallel,
		CheckpointDir: cfg.CheckpointDir,
		Engine: scalparc.Options{
			Split: e.Split,
			Bins:  e.Bins,
			VoteK: e.VoteK,
		},
	})
	if err != nil {
		return nil, err
	}
	m := &ForestModel{
		Forest: res.Forest,
		Metrics: ForestMetrics{
			Trees:          cfg.Trees,
			Trained:        res.TrainedTrees,
			Restored:       res.RestoredTrees,
			Lost:           res.LostTrees,
			ModeledSeconds: res.ModeledSeconds,
			WallSeconds:    res.WallSeconds,
			BytesSent:      res.Stats.BytesSent,
			BytesRecv:      res.Stats.BytesRecv,
		},
	}
	for _, run := range res.PerTree {
		m.Metrics.Recoveries += run.Recoveries
		m.Metrics.VoteFallbacks += run.VoteFallbacks
	}
	return m, nil
}

// EvaluateForest classifies every record of the table by majority vote of
// the forest's trees and compares against its labels. Tables run through
// the compiled batch-vote engine (internal/infer.CompileForest), which is
// bit-identical to the per-tree walker vote.
func EvaluateForest(f *Forest, tab *Table) (*Evaluation, error) {
	if f == nil || tab == nil {
		return nil, fmt.Errorf("classify: EvaluateForest needs a forest and a table")
	}
	m, err := infer.CompileForest(f)
	if err != nil {
		return nil, err
	}
	pred, err := m.PredictTable(tab)
	if err != nil {
		return nil, err
	}
	return evaluateLabels(f.Schema.Classes, pred, tab), nil
}

// DecodeForest reads a JSON-encoded forest produced by Forest.Encode.
func DecodeForest(r io.Reader) (*Forest, error) { return tree.DecodeForest(r) }

// DecodeModel reads either wire format — a single tree (Tree.Encode) or a
// forest (Forest.Encode) — and returns it as a forest (a tree is a forest
// of one). The format callers should use when a model file's provenance is
// unknown.
func DecodeModel(r io.Reader) (*Forest, error) { return tree.DecodeModel(r) }
