package classify

import (
	"fmt"

	"repro/internal/dataset"
)

// FoldResult is one fold's outcome in a cross-validation.
type FoldResult struct {
	Fold       int
	Evaluation *Evaluation
	TreeNodes  int
}

// CVResult summarises a k-fold cross-validation.
type CVResult struct {
	Folds        []FoldResult
	MeanAccuracy float64
	MinAccuracy  float64
	MaxAccuracy  float64
}

// CrossValidate runs k-fold cross-validation: the table is divided into k
// contiguous folds; each fold serves once as the held-out set while the
// model trains on the remainder under cfg. (Shuffle the table beforehand
// if its row order is not exchangeable.)
func CrossValidate(tab *Table, cfg Config, k int) (*CVResult, error) {
	if tab == nil {
		return nil, fmt.Errorf("classify: nil table")
	}
	if k < 2 {
		return nil, fmt.Errorf("classify: cross-validation needs k >= 2, got %d", k)
	}
	if tab.NumRows() < k {
		return nil, fmt.Errorf("classify: %d rows cannot form %d folds", tab.NumRows(), k)
	}

	res := &CVResult{MinAccuracy: 1}
	for fold := 0; fold < k; fold++ {
		lo, hi := dataset.BlockRange(tab.NumRows(), k, fold)
		test := tab.Slice(lo, hi)
		train := tab.Slice(0, lo)
		if err := train.AppendTable(tab.Slice(hi, tab.NumRows())); err != nil {
			return nil, err
		}

		model, err := Train(train, cfg)
		if err != nil {
			return nil, fmt.Errorf("classify: fold %d: %w", fold, err)
		}
		eval, err := Evaluate(model.Tree, test)
		if err != nil {
			return nil, fmt.Errorf("classify: fold %d: %w", fold, err)
		}
		res.Folds = append(res.Folds, FoldResult{
			Fold:       fold,
			Evaluation: eval,
			TreeNodes:  model.Tree.NumNodes(),
		})
		res.MeanAccuracy += eval.Accuracy
		if eval.Accuracy < res.MinAccuracy {
			res.MinAccuracy = eval.Accuracy
		}
		if eval.Accuracy > res.MaxAccuracy {
			res.MaxAccuracy = eval.Accuracy
		}
	}
	res.MeanAccuracy /= float64(k)
	return res, nil
}
