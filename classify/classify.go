// Package classify is the public API of the ScalParC reproduction: a
// decision-tree classification library for large datasets, offering the
// serial SPRINT-style classifier, the scalable parallel ScalParC algorithm
// (the paper's contribution), and the parallel SPRINT baseline it is
// evaluated against.
//
// Quick start:
//
//	table, _ := classify.GenerateQuest(classify.QuestConfig{Function: 2, Records: 100000, Seed: 1})
//	model, _ := classify.Train(table, classify.Config{Processors: 8})
//	eval, _ := classify.Evaluate(model.Tree, table)
//	fmt.Println(eval.Accuracy)
//
// Parallel training runs on a simulated distributed-memory machine (one
// goroutine per processor with hand-rolled MPI-style collectives) whose
// cost model yields a deterministic modeled parallel runtime and byte-exact
// per-processor memory figures — the quantities the paper's evaluation
// plots. The induced tree is identical for every processor count and every
// algorithm choice; only runtime and memory behaviour differ.
package classify

import (
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/faults"
	// Register the compiled batch-inference engine: every
	// tree.PredictTable caller — Evaluate, CrossValidate, user code —
	// classifies tables through internal/infer's flat node table.
	_ "repro/internal/infer"
	"repro/internal/scalparc"
	"repro/internal/serial"
	"repro/internal/sliq"
	"repro/internal/splitter"
	"repro/internal/sprint"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/tree"
)

// Re-exported data-model types: see package dataset for details.
type (
	// Schema describes a dataset's attributes and class labels.
	Schema = dataset.Schema
	// Attribute describes one record field.
	Attribute = dataset.Attribute
	// Table is a column-oriented set of labeled records.
	Table = dataset.Table
	// Tree is a trained decision tree.
	Tree = tree.Tree
	// Machine is the simulated machine's cost model.
	Machine = timing.Model
)

// Attribute kinds.
const (
	Continuous  = dataset.Continuous
	Categorical = dataset.Categorical
)

// Algorithm selects the training algorithm.
type Algorithm int

const (
	// ScalParC is the paper's scalable parallel classifier (default).
	ScalParC Algorithm = iota
	// SPRINT is the parallel SPRINT baseline with the replicated hash
	// table (unscalable in memory and communication; for comparison).
	SPRINT
	// Serial is the single-machine SPRINT-style classifier.
	Serial
	// SLIQ is the single-machine SLIQ classifier (Mehta et al., the
	// paper's reference [7]): unsplit attribute lists plus a
	// memory-resident class list. Induces the identical tree.
	SLIQ
)

// SplitMode selects ScalParC's split-finding strategy.
type SplitMode = scalparc.SplitStrategy

const (
	// SplitExact evaluates every distinct attribute value (the paper's
	// algorithm; default). The induced tree equals the serial tree.
	SplitExact = scalparc.SplitExact
	// SplitBinned quantizes continuous attributes into quantile bins at
	// presort time and exchanges dense count histograms with one
	// reduce-scatter per level; an approximation, but still invariant
	// under the processor count.
	SplitBinned = scalparc.SplitBinned
	// SplitVote adds PV-Tree style top-k attribute voting on top of
	// SplitBinned: ranks nominate their locally best k attributes per node
	// and only the elected candidates' histograms are exchanged, cutting
	// per-level FindSplit communication from O(attrs) to O(k).
	SplitVote = scalparc.SplitVote
)

// ParseSplitMode converts "exact", "binned", or "vote" to a SplitMode.
func ParseSplitMode(s string) (SplitMode, error) { return scalparc.ParseSplitStrategy(s) }

// DefaultBins is the quantile bin cap SplitBinned and SplitVote use when
// Config.Bins is zero.
const DefaultBins = scalparc.DefaultBins

// DefaultVoteK is the per-rank nomination count SplitVote uses when
// Config.VoteK is zero.
const DefaultVoteK = scalparc.DefaultVoteK

func (a Algorithm) String() string {
	switch a {
	case ScalParC:
		return "scalparc"
	case SPRINT:
		return "sprint"
	case Serial:
		return "serial"
	case SLIQ:
		return "sliq"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config controls training.
type Config struct {
	// Algorithm selects the classifier; default ScalParC.
	Algorithm Algorithm
	// Processors is the simulated processor count for the parallel
	// algorithms; default 1. Ignored by Serial.
	Processors int
	// Machine is the simulated machine's cost model; zero value selects
	// the default T3D-like machine.
	Machine Machine
	// MaxDepth limits tree depth (0 = unlimited).
	MaxDepth int
	// MinSplit is the minimum node size eligible for splitting (min 2).
	MinSplit int
	// CategoricalBinary selects binary subset splits for categorical
	// attributes instead of m-way splits (domains must have <= 64 values).
	CategoricalBinary bool
	// Prune applies pessimistic post-pruning to the induced tree.
	Prune bool
	// Split selects ScalParC's split-finding strategy (default SplitExact).
	// Only the ScalParC algorithm supports SplitBinned and SplitVote.
	Split SplitMode
	// Bins caps the per-attribute quantile bin count for SplitBinned and
	// SplitVote; 0 selects the default (256). Only meaningful with those
	// modes.
	Bins int
	// VoteK is the per-rank, per-node attribute nomination count for
	// SplitVote; 0 selects the default (8). Only meaningful with SplitVote.
	VoteK int
	// Faults is a fault-injection spec (see package faults: e.g.
	// "crash@FindSplitI:1:2" or "random:4:crash,straggle"). Only the
	// ScalParC algorithm has a recovery path, so faults require it.
	Faults string
	// FaultSeed seeds "random:" fault specs; required non-zero for them.
	FaultSeed int64
	// CheckpointEvery saves a level-boundary checkpoint every k levels
	// (0 disables; crashes then recover by full replay).
	CheckpointEvery int
	// CheckpointDir persists checkpoints to this directory; implies
	// CheckpointEvery 1 when that is unset. Required for checkpointing on
	// a wire-backed world (per-process fragment files rendezvous there).
	CheckpointDir string
	// Resume starts training from the last complete checkpoint in
	// CheckpointDir instead of from scratch. Only meaningful for
	// TrainWorld on a wire-backed world (the coordinator's respawn path);
	// Train rejects it.
	Resume bool
}

func (c Config) splitterConfig() splitter.Config {
	return splitter.Config{
		MaxDepth:          c.MaxDepth,
		MinSplit:          c.MinSplit,
		CategoricalBinary: c.CategoricalBinary,
	}
}

func (c Config) machine() timing.Model {
	if c.Machine == (timing.Model{}) {
		return timing.T3D()
	}
	return c.Machine
}

// Metrics reports how a training run behaved.
type Metrics struct {
	// Algorithm and Processors echo the configuration.
	Algorithm  Algorithm
	Processors int
	// Levels is the number of tree levels induced.
	Levels int
	// ModeledSeconds is the deterministic modeled parallel runtime T_p
	// (zero for Serial).
	ModeledSeconds float64
	// PresortModeledSeconds is the modeled presort time (zero for Serial).
	PresortModeledSeconds float64
	// WallSeconds is host wall-clock time.
	WallSeconds float64
	// PeakMemoryPerRank is each simulated processor's peak tracked bytes
	// (nil for Serial).
	PeakMemoryPerRank []int64
	// BytesSent and BytesRecv total the simulated communication volume
	// over all processors (zero for Serial).
	BytesSent, BytesRecv int64
	// PrunedNodes counts internal nodes collapsed by pruning.
	PrunedNodes int
	// Trace breaks the modeled runtime and communication down by the
	// paper's four induction phases (plus presort), per processor and
	// tree level. Nil for Serial; SLIQ reports a one-rank modeled trace.
	Trace *trace.Trace
	// Recoveries is how many crash-recovery rounds training survived.
	Recoveries int
	// FinalRanks is the live processor count after recovery shrinks.
	FinalRanks int
	// Lost lists the physical ranks lost to injected crashes.
	Lost []int
	// Suspicions counts peer failures detected by timeout rather than an
	// observed connection close (wire transports with -detect-timeout;
	// always zero on the simulated machine, where every death is seen).
	Suspicions int64
}

// Model is a trained classifier.
type Model struct {
	Tree    *Tree
	Metrics Metrics
}

// Train builds a decision tree on the table under the configuration.
func Train(tab *Table, cfg Config) (*Model, error) {
	if tab == nil {
		return nil, fmt.Errorf("classify: nil table")
	}
	if cfg.Processors < 0 {
		return nil, fmt.Errorf("classify: negative processor count %d", cfg.Processors)
	}
	p := cfg.Processors
	if p == 0 {
		p = 1
	}
	if (cfg.Split != SplitExact || cfg.Bins != 0 || cfg.VoteK != 0) && cfg.Algorithm != ScalParC {
		return nil, fmt.Errorf("classify: binned and vote split finding require the ScalParC algorithm (got %v)", cfg.Algorithm)
	}
	if (cfg.Faults != "" || cfg.CheckpointEvery != 0 || cfg.CheckpointDir != "" || cfg.Resume) && cfg.Algorithm != ScalParC {
		return nil, fmt.Errorf("classify: fault injection and checkpointing require the ScalParC algorithm (got %v)", cfg.Algorithm)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("classify: negative checkpoint interval %d", cfg.CheckpointEvery)
	}
	if cfg.Resume {
		return nil, fmt.Errorf("classify: Resume requires a wire-backed world (TrainWorld); the simulated machine replays in-process")
	}
	var schedule *faults.Schedule
	if cfg.Faults != "" {
		var err error
		if schedule, err = faults.Parse(cfg.Faults, cfg.FaultSeed, p); err != nil {
			return nil, err
		}
		if schedule.NeedsWire() {
			return nil, fmt.Errorf("classify: hang faults require a wire transport (the simulated machine's ranks share one process)")
		}
	}

	m := &Model{Metrics: Metrics{Algorithm: cfg.Algorithm, Processors: p}}
	switch cfg.Algorithm {
	case Serial, SLIQ:
		var t *tree.Tree
		var err error
		if cfg.Algorithm == Serial {
			t, err = serial.Train(tab, cfg.splitterConfig())
		} else {
			t, m.Metrics.Trace, m.Metrics.ModeledSeconds, err = sliq.TrainTraced(tab, cfg.splitterConfig(), cfg.machine())
		}
		if err != nil {
			return nil, err
		}
		m.Tree = t
		m.Metrics.Processors = 1
		m.Metrics.Levels = t.Depth() + 1
	case ScalParC, SPRINT:
		var err error
		if m, err = trainParallel(comm.NewWorld(p, cfg.machine()), tab, cfg, schedule); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("classify: unknown algorithm %v", cfg.Algorithm)
	}

	if cfg.Prune {
		m.Metrics.PrunedNodes = m.Tree.Prune()
	}
	return m, nil
}

// TrainWorld trains on a caller-provided communication world instead of
// constructing a simulated one — the entry point for rank-worker
// processes driving a transport-backed World (cmd/scalparc
// -transport=tcp). Only the parallel algorithms apply; cfg.Processors is
// ignored (the world defines the machine size).
func TrainWorld(w *comm.World, tab *Table, cfg Config) (*Model, error) {
	if tab == nil {
		return nil, fmt.Errorf("classify: nil table")
	}
	if cfg.Algorithm != ScalParC && cfg.Algorithm != SPRINT {
		return nil, fmt.Errorf("classify: TrainWorld requires a parallel algorithm (got %v)", cfg.Algorithm)
	}
	if (cfg.Split != SplitExact || cfg.Bins != 0 || cfg.VoteK != 0) && cfg.Algorithm != ScalParC {
		return nil, fmt.Errorf("classify: binned and vote split finding require the ScalParC algorithm (got %v)", cfg.Algorithm)
	}
	if (cfg.Faults != "" || cfg.CheckpointEvery != 0 || cfg.CheckpointDir != "" || cfg.Resume) && cfg.Algorithm != ScalParC {
		return nil, fmt.Errorf("classify: fault injection and checkpointing require the ScalParC algorithm (got %v)", cfg.Algorithm)
	}
	var schedule *faults.Schedule
	if cfg.Faults != "" {
		var err error
		if schedule, err = faults.Parse(cfg.Faults, cfg.FaultSeed, w.Size()); err != nil {
			return nil, err
		}
		if schedule.NeedsWire() && !w.Distributed() {
			return nil, fmt.Errorf("classify: hang faults require a wire transport (the simulated machine's ranks share one process)")
		}
	}
	if cfg.Resume && !w.Distributed() {
		return nil, fmt.Errorf("classify: Resume requires a wire-backed world")
	}
	m, err := trainParallel(w, tab, cfg, schedule)
	if err != nil {
		return nil, err
	}
	if cfg.Prune {
		m.Metrics.PrunedNodes = m.Tree.Prune()
	}
	return m, nil
}

// trainParallel runs the ScalParC or SPRINT arm on the given world and
// assembles the metrics both Train and TrainWorld report.
func trainParallel(w *comm.World, tab *Table, cfg Config, schedule *faults.Schedule) (*Model, error) {
	m := &Model{Metrics: Metrics{Algorithm: cfg.Algorithm, Processors: w.Size()}}
	var res *scalparc.Result
	var err error
	if cfg.Algorithm == ScalParC {
		opts := scalparc.Options{
			Split:           cfg.Split,
			Bins:            cfg.Bins,
			VoteK:           cfg.VoteK,
			CheckpointEvery: cfg.CheckpointEvery,
			CheckpointDir:   cfg.CheckpointDir,
			Resume:          cfg.Resume,
		}
		if schedule != nil {
			opts.Faults = schedule
		}
		res, err = scalparc.TrainOpts(w, tab, cfg.splitterConfig(), opts)
	} else {
		res, err = sprint.Train(w, tab, cfg.splitterConfig())
	}
	if err != nil {
		return nil, err
	}
	m.Tree = res.Tree
	m.Metrics.Levels = res.Levels
	m.Metrics.ModeledSeconds = res.ModeledSeconds
	m.Metrics.PresortModeledSeconds = res.PresortModeledSeconds
	m.Metrics.WallSeconds = res.WallSeconds
	m.Metrics.PeakMemoryPerRank = res.PeakMemoryPerRank
	m.Metrics.Trace = res.Trace
	m.Metrics.Recoveries = res.Recoveries
	m.Metrics.FinalRanks = res.FinalRanks
	m.Metrics.Lost = res.Lost
	for _, s := range res.Stats {
		m.Metrics.BytesSent += s.BytesSent
		m.Metrics.BytesRecv += s.BytesRecv
		m.Metrics.Suspicions += s.Suspicions
	}
	return m, nil
}

// QuestConfig parameterises the synthetic Quest data generator the paper
// evaluates on.
type QuestConfig struct {
	// Function selects the Quest classification function, 1..10.
	Function int
	// Records is the number of records to generate.
	Records int
	// Seed makes generation deterministic.
	Seed int64
	// NineAttributes selects the full nine-attribute Quest schema instead
	// of the paper's seven-attribute projection.
	NineAttributes bool
	// LabelNoise flips each label with this probability.
	LabelNoise float64
	// Perturbation is the Quest generator's original noise mechanism:
	// continuous attribute values are perturbed by this factor of their
	// range after labeling (the Quest experiments use 0.05).
	Perturbation float64
}

// GenerateQuest produces a synthetic training table.
func GenerateQuest(cfg QuestConfig) (*Table, error) {
	set := datagen.Seven
	if cfg.NineAttributes {
		set = datagen.Nine
	}
	return datagen.Generate(datagen.Config{
		Function:     cfg.Function,
		Attrs:        set,
		Seed:         cfg.Seed,
		LabelNoise:   cfg.LabelNoise,
		Perturbation: cfg.Perturbation,
	}, cfg.Records)
}

// GenerateQuestMultiClass is GenerateQuest's multi-class extension: labels
// are income-score bands instead of the two-class Quest functions (the
// classifiers are fully multi-class; the original generator is not).
func GenerateQuestMultiClass(cfg QuestConfig, classes int) (*Table, error) {
	set := datagen.Seven
	if cfg.NineAttributes {
		set = datagen.Nine
	}
	return datagen.GenerateMultiClass(datagen.Config{
		Function:     cfg.Function,
		Attrs:        set,
		Seed:         cfg.Seed,
		LabelNoise:   cfg.LabelNoise,
		Perturbation: cfg.Perturbation,
	}, cfg.Records, classes)
}

// QuestSchema returns the generator's schema without generating records.
func QuestSchema(nineAttributes bool) *Schema {
	if nineAttributes {
		return datagen.Schema(datagen.Nine)
	}
	return datagen.Schema(datagen.Seven)
}

// NewTable creates an empty table for a schema with capacity for n rows.
func NewTable(s *Schema, n int) *Table { return dataset.NewTable(s, n) }

// ReadCSV parses a table (WriteCSV's format) against a schema.
func ReadCSV(r io.Reader, s *Schema) (*Table, error) { return dataset.ReadCSV(r, s) }

// WriteCSV writes a table with a header row.
func WriteCSV(w io.Writer, t *Table) error { return dataset.WriteCSV(w, t) }

// DecodeTree reads a JSON-encoded tree produced by Tree.Encode.
func DecodeTree(r io.Reader) (*Tree, error) { return tree.Decode(r) }

// DefaultMachine returns the default simulated machine model (T3D-like).
func DefaultMachine() Machine { return timing.T3D() }
