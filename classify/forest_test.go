package classify

import (
	"bytes"
	"testing"
)

func TestTrainForestEndToEnd(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 1, Records: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainForest(tab, ForestConfig{
		Trees: 5, Seed: 9, FeatureSample: 3, Parallel: 2,
		Engine: Config{Processors: 2, MinSplit: 8, Split: SplitBinned, Bins: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Forest.NumTrees() != 5 || m.Metrics.Trained != 5 || len(m.Metrics.Lost) != 0 {
		t.Fatalf("metrics = %+v, want 5 trained trees", m.Metrics)
	}
	if m.Metrics.BytesSent == 0 || m.Metrics.ModeledSeconds == 0 {
		t.Fatalf("metrics = %+v, want nonzero communication and modeled time", m.Metrics)
	}
	ev, err := EvaluateForest(m.Forest, tab)
	if err != nil {
		t.Fatal(err)
	}
	if ev.N != tab.NumRows() || ev.Accuracy <= 0.5 {
		t.Fatalf("evaluation %v, want full coverage and better-than-chance accuracy", ev)
	}

	// Round-trip through both decoders: the forest wire format and the
	// format-sniffing model decoder must agree.
	var b bytes.Buffer
	if err := m.Forest.Encode(&b); err != nil {
		t.Fatal(err)
	}
	enc := b.Bytes()
	f2, err := DecodeForest(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	f3, err := DecodeModel(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumTrees() != 5 || f3.NumTrees() != 5 {
		t.Fatalf("decoded %d / %d trees, want 5", f2.NumTrees(), f3.NumTrees())
	}
	ev2, err := EvaluateForest(f2, tab)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Accuracy != ev.Accuracy {
		t.Fatalf("decoded forest accuracy %.4f, want %.4f", ev2.Accuracy, ev.Accuracy)
	}
}

func TestTrainForestRejectsEngineMisuse(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 1, Records: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		engine Config
	}{
		{"algorithm", Config{Algorithm: Serial}},
		{"faults", Config{Faults: "crash@FindSplitI:1:2"}},
		{"checkpoint", Config{CheckpointDir: t.TempDir()}},
		{"prune", Config{Prune: true}},
	} {
		if _, err := TrainForest(tab, ForestConfig{Trees: 2, Engine: tc.engine}); err == nil {
			t.Errorf("%s: engine misuse not rejected", tc.name)
		}
	}
}
