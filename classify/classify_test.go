package classify

import (
	"bytes"
	"strings"
	"testing"
)

func questTable(t *testing.T, n int) *Table {
	t.Helper()
	tab, err := GenerateQuest(QuestConfig{Function: 2, Records: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTrainDefaultIsScalParC(t *testing.T) {
	tab := questTable(t, 300)
	m, err := Train(tab, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics.Algorithm != ScalParC || m.Metrics.Processors != 4 {
		t.Fatalf("metrics %+v", m.Metrics)
	}
	if m.Tree == nil || m.Metrics.ModeledSeconds <= 0 || m.Metrics.BytesSent <= 0 {
		t.Fatalf("missing outputs: %+v", m.Metrics)
	}
	if len(m.Metrics.PeakMemoryPerRank) != 4 {
		t.Fatal("per-rank memory missing")
	}
}

func TestAllAlgorithmsAgreeOnTheTree(t *testing.T) {
	tab := questTable(t, 300)
	serialM, err := Train(tab, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{ScalParC, SPRINT} {
		for _, p := range []int{1, 3, 8} {
			m, err := Train(tab, Config{Algorithm: alg, Processors: p})
			if err != nil {
				t.Fatalf("%v p=%d: %v", alg, p, err)
			}
			if !m.Tree.Equal(serialM.Tree) {
				t.Fatalf("%v p=%d differs from serial tree", alg, p)
			}
		}
	}
	sliqM, err := Train(tab, Config{Algorithm: SLIQ})
	if err != nil {
		t.Fatal(err)
	}
	if !sliqM.Tree.Equal(serialM.Tree) {
		t.Fatal("SLIQ differs from serial tree")
	}
	if sliqM.Metrics.Algorithm != SLIQ || sliqM.Metrics.Processors != 1 {
		t.Fatalf("SLIQ metrics: %+v", sliqM.Metrics)
	}
}

func TestTrainSerialMetrics(t *testing.T) {
	tab := questTable(t, 200)
	m, err := Train(tab, Config{Algorithm: Serial, Processors: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Metrics.Processors != 1 {
		t.Fatal("serial must report one processor")
	}
	if m.Metrics.ModeledSeconds != 0 || m.Metrics.BytesSent != 0 {
		t.Fatal("serial must not report simulated metrics")
	}
	if m.Metrics.Levels < 1 {
		t.Fatal("levels missing")
	}
}

func TestTrainWithPruning(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 2, Records: 400, Seed: 9, LabelNoise: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Train(tab, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Train(tab, Config{Algorithm: Serial, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Metrics.PrunedNodes == 0 {
		t.Fatal("noisy data should trigger pruning")
	}
	if pruned.Tree.NumNodes() >= full.Tree.NumNodes() {
		t.Fatal("pruning did not shrink the tree")
	}
}

func TestTrainConfigErrors(t *testing.T) {
	tab := questTable(t, 50)
	if _, err := Train(nil, Config{}); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := Train(tab, Config{Processors: -1}); err == nil {
		t.Fatal("negative processors accepted")
	}
	if _, err := Train(tab, Config{Algorithm: Algorithm(9)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Train(tab, Config{MaxDepth: -1}); err == nil {
		t.Fatal("invalid depth accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	if ScalParC.String() != "scalparc" || SPRINT.String() != "sprint" ||
		Serial.String() != "serial" || SLIQ.String() != "sliq" {
		t.Fatal("algorithm names wrong")
	}
	if !strings.Contains(Algorithm(7).String(), "7") {
		t.Fatal("unknown algorithm string")
	}
}

func TestQuestHelpers(t *testing.T) {
	s7 := QuestSchema(false)
	s9 := QuestSchema(true)
	if s7.NumAttrs() != 7 || s9.NumAttrs() != 9 {
		t.Fatal("schema helpers wrong")
	}
	if _, err := GenerateQuest(QuestConfig{Function: 0, Records: 10}); err == nil {
		t.Fatal("bad function accepted")
	}
	tab, err := GenerateQuest(QuestConfig{Function: 5, Records: 10, Seed: 2, NineAttributes: true})
	if err != nil || tab.NumRows() != 10 || tab.Schema.NumAttrs() != 9 {
		t.Fatalf("nine-attr generation: %v", err)
	}
}

func TestMultiClassEndToEnd(t *testing.T) {
	tab, err := GenerateQuestMultiClass(QuestConfig{Records: 2000, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema.NumClasses() != 4 {
		t.Fatalf("classes=%d", tab.Schema.NumClasses())
	}
	serialM, err := Train(tab, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Algorithm: SLIQ},
		{Algorithm: ScalParC, Processors: 4},
		{Algorithm: SPRINT, Processors: 4},
	} {
		m, err := Train(tab, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
		if !m.Tree.Equal(serialM.Tree) {
			t.Fatalf("%v differs from serial on multi-class data", cfg.Algorithm)
		}
	}
	eval, err := Evaluate(serialM.Tree, tab)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Accuracy != 1.0 {
		t.Fatalf("deterministic bands should be fully learnable, accuracy %.3f", eval.Accuracy)
	}
	if len(eval.PerClass) != 4 {
		t.Fatal("per-class metrics missing")
	}
	if _, err := GenerateQuestMultiClass(QuestConfig{Records: 10}, 1); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestCSVAndTreeRoundTripThroughFacade(t *testing.T) {
	tab := questTable(t, 30)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, tab.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 30 {
		t.Fatal("csv round trip lost rows")
	}
	m, err := Train(tab, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	var tb bytes.Buffer
	if err := m.Tree.Encode(&tb); err != nil {
		t.Fatal(err)
	}
	tr, err := DecodeTree(&tb)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(m.Tree) {
		t.Fatal("tree round trip changed the tree")
	}
}

func TestCustomMachineModel(t *testing.T) {
	tab := questTable(t, 200)
	fast := DefaultMachine()
	fast.ScanRate *= 100
	fast.SplitRate *= 100
	slow, err := Train(tab, Config{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	quick, err := Train(tab, Config{Processors: 2, Machine: fast})
	if err != nil {
		t.Fatal(err)
	}
	if quick.Metrics.ModeledSeconds >= slow.Metrics.ModeledSeconds {
		t.Fatal("a faster machine model must yield a smaller modeled runtime")
	}
	if !quick.Tree.Equal(slow.Tree) {
		t.Fatal("machine model must not affect the tree")
	}
}

func TestTrainFaultConfigValidation(t *testing.T) {
	tab := questTable(t, 200)
	bad := []Config{
		{Algorithm: Serial, Faults: "crash@FindSplitI:1:0"},
		{Algorithm: SPRINT, Processors: 2, CheckpointEvery: 1},
		{Algorithm: SLIQ, CheckpointDir: "x"},
		{Processors: 2, CheckpointEvery: -1},
		{Processors: 2, Faults: "random:3"}, // random without seed
		{Processors: 2, Faults: "nonsense"},
	}
	for i, cfg := range bad {
		if _, err := Train(tab, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestTrainRecoversFromInjectedCrash(t *testing.T) {
	tab := questTable(t, 800)
	clean, err := Train(tab, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{
		Processors:      4,
		Faults:          "crash@PerformSplitI:1:2",
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Tree.Equal(clean.Tree) {
		t.Fatal("recovered tree differs from fault-free tree")
	}
	mm := m.Metrics
	if mm.Recoveries != 1 || mm.FinalRanks != 3 || len(mm.Lost) != 1 || mm.Lost[0] != 2 {
		t.Fatalf("recovery metrics %+v", mm)
	}
}
