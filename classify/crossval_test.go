package classify

import "testing"

func TestCrossValidate(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 1, Records: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(tab, Config{Algorithm: Serial}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds=%d", len(res.Folds))
	}
	total := 0
	for i, f := range res.Folds {
		if f.Fold != i || f.Evaluation == nil || f.TreeNodes < 1 {
			t.Fatalf("fold %d malformed: %+v", i, f)
		}
		total += f.Evaluation.N
	}
	if total != 1000 {
		t.Fatalf("folds cover %d rows, want 1000", total)
	}
	if res.MeanAccuracy < 0.9 {
		t.Fatalf("mean accuracy %.3f too low for F1", res.MeanAccuracy)
	}
	if res.MinAccuracy > res.MeanAccuracy || res.MaxAccuracy < res.MeanAccuracy {
		t.Fatalf("accuracy bounds inconsistent: %+v", res)
	}
}

func TestCrossValidateParallelMatchesSerial(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 2, Records: 400, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	a, err := CrossValidate(tab, Config{Algorithm: Serial}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(tab, Config{Algorithm: ScalParC, Processors: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Folds {
		if a.Folds[i].Evaluation.Accuracy != b.Folds[i].Evaluation.Accuracy ||
			a.Folds[i].TreeNodes != b.Folds[i].TreeNodes {
			t.Fatalf("fold %d differs between serial and parallel CV", i)
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 1, Records: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CrossValidate(nil, Config{}, 3); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := CrossValidate(tab, Config{}, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := CrossValidate(tab, Config{}, 11); err == nil {
		t.Fatal("more folds than rows accepted")
	}
}

func TestCCPPruningThroughFacade(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 2, Records: 2000, Seed: 9, LabelNoise: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	train, rest := tab.Split(0.6)
	val, test := rest.Split(0.5)

	model, err := Train(train, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	before, err := Evaluate(model.Tree, test)
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := model.Tree.NumNodes()

	removed, err := model.Tree.PruneCCP(val)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("noisy tree should have prunable structure")
	}
	if model.Tree.NumNodes() >= nodesBefore {
		t.Fatal("CCP did not shrink the tree")
	}
	after, err := Evaluate(model.Tree, test)
	if err != nil {
		t.Fatal(err)
	}
	if after.Accuracy < before.Accuracy-0.02 {
		t.Fatalf("CCP hurt held-out accuracy: %.3f -> %.3f", before.Accuracy, after.Accuracy)
	}
}
