package classify_test

import (
	"fmt"
	"log"

	"repro/classify"
)

// Example trains ScalParC on synthetic Quest data and reports accuracy.
func Example() {
	table, err := classify.GenerateQuest(classify.QuestConfig{
		Function: 1, // GroupA iff age < 40 or age >= 60
		Records:  5000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := table.Split(0.8)

	model, err := classify.Train(train, classify.Config{
		Algorithm:  classify.ScalParC,
		Processors: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	eval, err := classify.Evaluate(model.Tree, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy %.2f\n", eval.Accuracy)
	// Output: accuracy 1.00
}

// ExampleTrain_identicalTrees shows the library's determinism guarantee:
// every algorithm, at every processor count, induces the same tree.
func ExampleTrain_identicalTrees() {
	table, err := classify.GenerateQuest(classify.QuestConfig{Function: 2, Records: 1000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	reference, err := classify.Train(table, classify.Config{Algorithm: classify.Serial})
	if err != nil {
		log.Fatal(err)
	}
	for _, cfg := range []classify.Config{
		{Algorithm: classify.SLIQ},
		{Algorithm: classify.ScalParC, Processors: 4},
		{Algorithm: classify.SPRINT, Processors: 8},
	} {
		m, err := classify.Train(table, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: identical=%v\n", cfg.Algorithm, m.Tree.Equal(reference.Tree))
	}
	// Output:
	// sliq: identical=true
	// scalparc: identical=true
	// sprint: identical=true
}

// ExampleTrain_scalability reads the simulated machine's metrics: modeled
// runtime shrinks and per-processor memory halves as processors double.
func ExampleTrain_scalability() {
	table, err := classify.GenerateQuest(classify.QuestConfig{Function: 2, Records: 20000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var prevTime float64
	var prevMem int64
	for _, p := range []int{4, 8} {
		m, err := classify.Train(table, classify.Config{Processors: p})
		if err != nil {
			log.Fatal(err)
		}
		var peak int64
		for _, b := range m.Metrics.PeakMemoryPerRank {
			if b > peak {
				peak = b
			}
		}
		if prevTime > 0 {
			fmt.Printf("doubling 4->8: runtime x%.2f, memory x%.2f\n",
				m.Metrics.ModeledSeconds/prevTime, float64(peak)/float64(prevMem))
		}
		prevTime, prevMem = m.Metrics.ModeledSeconds, peak
	}
	// Output: doubling 4->8: runtime x0.57, memory x0.50
}

// ExampleCrossValidate estimates generalisation with k folds.
func ExampleCrossValidate() {
	table, err := classify.GenerateQuest(classify.QuestConfig{Function: 1, Records: 2000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	cv, err := classify.CrossValidate(table, classify.Config{Algorithm: classify.Serial}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folds=%d mean accuracy %.2f\n", len(cv.Folds), cv.MeanAccuracy)
	// Output: folds=4 mean accuracy 1.00
}

// ExampleEvaluate prints a per-class report.
func ExampleEvaluate() {
	table, err := classify.GenerateQuest(classify.QuestConfig{Function: 1, Records: 1000, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	m, err := classify.Train(table, classify.Config{Algorithm: classify.Serial})
	if err != nil {
		log.Fatal(err)
	}
	eval, err := classify.Evaluate(m.Tree, table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct %d of %d\n", eval.Correct, eval.N)
	// Output: correct 1000 of 1000
}
