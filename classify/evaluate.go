package classify

import "fmt"

// ClassMetrics holds per-class quality measures.
//
// Degenerate folds are well-defined: a class absent from the evaluated
// table (Support 0) or never predicted has Precision, Recall, and F1 of
// exactly 0 — never NaN — so fold averages stay finite.
type ClassMetrics struct {
	Class     string
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// Evaluation summarises a tree's performance on a labeled table.
type Evaluation struct {
	N        int
	Correct  int
	Accuracy float64
	// Confusion[actual][predicted] counts records.
	Confusion [][]int
	PerClass  []ClassMetrics
}

// Evaluate classifies every record of the table and compares against its
// labels. Tables are classified through the compiled batch-inference
// engine (internal/infer) via Tree.PredictTable.
func Evaluate(t *Tree, tab *Table) (*Evaluation, error) {
	if t == nil || tab == nil {
		return nil, fmt.Errorf("classify: Evaluate needs a tree and a table")
	}
	if len(t.Schema.Classes) != len(tab.Schema.Classes) || len(t.Schema.Attrs) != len(tab.Schema.Attrs) {
		return nil, fmt.Errorf("classify: tree schema (%d attrs, %d classes) incompatible with table (%d attrs, %d classes)",
			len(t.Schema.Attrs), len(t.Schema.Classes), len(tab.Schema.Attrs), len(tab.Schema.Classes))
	}
	return evaluateLabels(t.Schema.Classes, t.PredictTable(tab), tab), nil
}

// evaluateLabels assembles the evaluation from precomputed predictions —
// the shared back half of Evaluate and EvaluateForest.
func evaluateLabels(classes []string, pred []int, tab *Table) *Evaluation {
	nc := len(classes)
	ev := &Evaluation{N: tab.NumRows(), Confusion: make([][]int, nc)}
	for i := range ev.Confusion {
		ev.Confusion[i] = make([]int, nc)
	}
	for r, p := range pred {
		actual := int(tab.Class[r])
		ev.Confusion[actual][p]++
		if p == actual {
			ev.Correct++
		}
	}
	if ev.N > 0 {
		ev.Accuracy = float64(ev.Correct) / float64(ev.N)
	}

	ev.PerClass = make([]ClassMetrics, nc)
	for j := 0; j < nc; j++ {
		tp := ev.Confusion[j][j]
		var fp, fn, support int
		for k := 0; k < nc; k++ {
			support += ev.Confusion[j][k]
			if k != j {
				fn += ev.Confusion[j][k]
				fp += ev.Confusion[k][j]
			}
		}
		cm := ClassMetrics{Class: classes[j], Support: support}
		if tp+fp > 0 {
			cm.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			cm.Recall = float64(tp) / float64(tp+fn)
		}
		if cm.Precision+cm.Recall > 0 {
			cm.F1 = 2 * cm.Precision * cm.Recall / (cm.Precision + cm.Recall)
		}
		ev.PerClass[j] = cm
	}
	return ev
}

// String renders a compact evaluation report.
func (e *Evaluation) String() string {
	s := fmt.Sprintf("accuracy %.4f (%d/%d)\n", e.Accuracy, e.Correct, e.N)
	for _, c := range e.PerClass {
		s += fmt.Sprintf("  %-12s precision %.3f recall %.3f f1 %.3f support %d\n",
			c.Class, c.Precision, c.Recall, c.F1, c.Support)
	}
	return s
}
