package classify

import (
	"math"
	"strings"
	"testing"
)

func TestEvaluatePerfectTree(t *testing.T) {
	tab := questTable(t, 400)
	m, err := Train(tab, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m.Tree, tab)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy != 1.0 || ev.Correct != 400 || ev.N != 400 {
		t.Fatalf("training-set evaluation: %+v", ev)
	}
	// Off-diagonal confusion must be empty.
	for i := range ev.Confusion {
		for j := range ev.Confusion[i] {
			if i != j && ev.Confusion[i][j] != 0 {
				t.Fatalf("confusion[%d][%d]=%d", i, j, ev.Confusion[i][j])
			}
		}
	}
	for _, c := range ev.PerClass {
		if c.Support > 0 && (c.Precision != 1 || c.Recall != 1 || c.F1 != 1) {
			t.Fatalf("per-class metrics: %+v", c)
		}
	}
}

func TestEvaluateHeldOut(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 1, Records: 3000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	train, test := tab.Split(0.7)
	m, err := Train(train, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m.Tree, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.95 {
		t.Fatalf("held-out accuracy %.3f too low for F1", ev.Accuracy)
	}
	if ev.N != test.NumRows() {
		t.Fatal("evaluation record count wrong")
	}
}

func TestEvaluateConfusionConsistency(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 2, Records: 500, Seed: 3, LabelNoise: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{Algorithm: Serial, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m.Tree, tab)
	if err != nil {
		t.Fatal(err)
	}
	total, diag := 0, 0
	for i := range ev.Confusion {
		for j := range ev.Confusion[i] {
			total += ev.Confusion[i][j]
			if i == j {
				diag += ev.Confusion[i][j]
			}
		}
	}
	if total != ev.N || diag != ev.Correct {
		t.Fatalf("confusion totals: total=%d diag=%d vs N=%d correct=%d", total, diag, ev.N, ev.Correct)
	}
	// Support must match class histogram.
	hist := tab.ClassHistogram()
	for j, c := range ev.PerClass {
		if int64(c.Support) != hist[j] {
			t.Fatalf("class %d support %d, histogram %d", j, c.Support, hist[j])
		}
	}
}

// TestEvaluateDegenerateFold is the regression test for empty-class
// metrics: when a class is entirely absent from the evaluated split (the
// shape a contiguous cross-validation fold produces on class-sorted data),
// every per-class metric must be exactly 0 for it — never NaN or Inf.
func TestEvaluateDegenerateFold(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 2, Records: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(tab, Config{Algorithm: Serial, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Build a test split holding only class-0 rows: class 1 is absent.
	only := NewTable(tab.Schema, 64)
	for r := 0; r < tab.NumRows() && only.NumRows() < 64; r++ {
		if tab.Class[r] == 0 {
			if err := only.AppendRow(tab.Row(r), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if only.NumRows() == 0 {
		t.Fatal("fixture produced no class-0 rows")
	}
	ev, err := Evaluate(m.Tree, only)
	if err != nil {
		t.Fatal(err)
	}
	absent := ev.PerClass[1]
	if absent.Support != 0 {
		t.Fatalf("class 1 should be absent, support %d", absent.Support)
	}
	for _, v := range []float64{absent.Precision, absent.Recall, absent.F1} {
		if v != 0 {
			t.Fatalf("absent class metrics must be exactly 0, got %+v", absent)
		}
	}
	for _, c := range ev.PerClass {
		for _, v := range []float64{c.Precision, c.Recall, c.F1} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite metric in %+v", c)
			}
		}
	}
	if !strings.Contains(ev.String(), "recall 0.000") {
		t.Fatalf("report should render the empty class:\n%s", ev)
	}
}

// TestCrossValidateClassSortedData drives the same degeneracy end to end:
// contiguous folds over class-sorted rows produce folds that miss a class
// entirely, and every reported number must stay finite.
func TestCrossValidateClassSortedData(t *testing.T) {
	tab, err := GenerateQuest(QuestConfig{Function: 2, Records: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sorted := NewTable(tab.Schema, tab.NumRows())
	for _, class := range []uint8{0, 1} {
		for r := 0; r < tab.NumRows(); r++ {
			if tab.Class[r] == class {
				if err := sorted.AppendRow(tab.Row(r), int(class)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	cv, err := CrossValidate(sorted, Config{Algorithm: Serial, MaxDepth: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range cv.Folds {
		if math.IsNaN(f.Evaluation.Accuracy) {
			t.Fatalf("fold %d accuracy is NaN", f.Fold)
		}
		for _, c := range f.Evaluation.PerClass {
			for _, v := range []float64{c.Precision, c.Recall, c.F1} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("fold %d class %s: non-finite metric %+v", f.Fold, c.Class, c)
				}
			}
		}
	}
	if math.IsNaN(cv.MeanAccuracy) {
		t.Fatal("mean accuracy is NaN")
	}
}

func TestEvaluateErrors(t *testing.T) {
	tab := questTable(t, 20)
	m, err := Train(tab, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(nil, tab); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := Evaluate(m.Tree, nil); err == nil {
		t.Fatal("nil table accepted")
	}
	other := QuestSchema(true) // 9 attrs vs the tree's 7
	if _, err := Evaluate(m.Tree, NewTable(other, 0)); err == nil {
		t.Fatal("incompatible schema accepted")
	}
}

func TestEvaluationString(t *testing.T) {
	tab := questTable(t, 100)
	m, err := Train(tab, Config{Algorithm: Serial})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(m.Tree, tab)
	if err != nil {
		t.Fatal(err)
	}
	s := ev.String()
	if !strings.Contains(s, "accuracy") || !strings.Contains(s, "GroupA") {
		t.Fatalf("report:\n%s", s)
	}
}
